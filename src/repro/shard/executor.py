"""Drain the shard stream, checkpoint, merge, replay — in serial order.

:func:`run_sharded_sweep` is the sharded equivalent of feeding the full
Lemma 3.1 instance stream through the neighborhood-graph builder:

1. **Serial prefix** — sizes up to the shard depth go through the exact
   serial enumeration (they are the tree being split; too small to
   shard, and the shard roots are their memoized final level);
2. **Shard stage** — one future per :class:`~repro.shard.spec.Shard`
   on a process pool.  The pool *is* the work-stealing queue: workers
   pull the next pending unit the moment one finishes, so skewed
   subtrees never straggle behind a static partition.  Each finished
   shard is checkpointed (:mod:`repro.shard.checkpoint`) the moment it
   arrives, so a killed sweep resumes from completed shards;
3. **Merge + replay** — per size, shard emission blocks merge by
   ascending minimal edge mask (classes have unique masks, and the
   serial walk emits each level mask-sorted, so the merged stream is
   byte-identical to the unsharded one) and replay through
   :func:`repro.perf.parallel._replay_chunk` with exact per-instance
   account deltas — consumer events, early exits, accounts, and
   fingerprints all match the serial sweep.

An optional :class:`~repro.shard.queue.ShardQueue` coordinates multiple
hosts draining one sweep directory: this host computes only the shards
it claims and adopts foreign shards from their checkpoints (stealing
expired leases).
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import as_completed
from dataclasses import dataclass

from ..neighborhood.aviews import labeled_yes_instances
from ..obs.logs import get_logger
from ..perf.config import CONFIG
from ..perf.parallel import _replay_chunk
from ..perf.stats import GLOBAL_STATS
from ..symmetry.orderly import level_entries
from .checkpoint import ShardCheckpointStore
from .spec import Shard, ShardSpec, plan_shards
from .worker import run_shard

log = get_logger("shard.executor")

#: Seconds between checkpoint polls while waiting on foreign shards.
_FOREIGN_POLL_S = 0.1


def sharding_effective(lcp, plan, n: int) -> bool:
    """Whether this sweep runs the sharded path.

    ``"off"`` never; ``"on"`` whenever there is a subtree to split
    (``n > shard_depth``) — even single-process, where shards execute
    in-process sequentially (the deterministic test route); ``"auto"``
    only where the pool can pay for itself: effective ``workers > 1``,
    no early exit (shards complete before replay, so an exit saves
    nothing), and orderly generation active (``symmetry != "off"`` —
    the legacy edge-subset walk has no augmentation tree).
    """
    depth = plan.shard_depth if plan.shard_depth is not None else CONFIG.shard_depth
    if plan.sharding == "off" or n <= depth:
        return False
    if (plan.symmetry or "off") == "off":
        return False
    if plan.sharding == "on":
        return True
    workers = plan.workers or 0
    return workers > 1 and not plan.early_exit


@dataclass
class ShardSweepOutcome:
    """What the sharded route reports up into ``Provenance``."""

    ngraph: object
    shard_count: int = 0
    steal_count: int = 0
    shards_per_sec: float | None = None
    checkpoint_hits: int = 0
    workers_effective: int = 1
    stopped: bool = False


def run_sharded_sweep(
    lcp,
    n: int,
    plan,
    ctx,
    *,
    bounds: dict,
    symmetry: str,
    consumer=None,
    into=None,
    account=None,
    lo: int = 0,
    kernel: str | None = None,
    sweep_key: dict | None = None,
    queue=None,
) -> ShardSweepOutcome:
    """Sharded drop-in for the serial sweep-and-build of sizes
    ``lo+1 .. n`` (``lo > 0`` is the streaming warm start's floor).

    *bounds* are the enumeration-bound kwargs of
    :func:`~repro.neighborhood.aviews.labeled_yes_instances`; *symmetry*
    is the already-pruning-resolved mode the backend would pass the
    serial sweep.  *sweep_key* (the backend's persistent identity dict)
    enables checkpoints; *queue* (a :class:`~repro.shard.queue.ShardQueue`)
    enables multi-host draining and requires checkpoints.
    """
    from ..graphs.families import all_graphs_exactly  # noqa: PLC0415
    from ..neighborhood.ngraph import NeighborhoodGraph, build_neighborhood_graph  # noqa: PLC0415

    depth = plan.shard_depth if plan.shard_depth is not None else CONFIG.shard_depth
    workers = plan.workers or 1
    ngraph = (
        into
        if into is not None
        else NeighborhoodGraph(radius=lcp.radius, include_ids=not lcp.anonymous)
    )
    store = None
    if CONFIG.shard_checkpoints and plan.disk_cache and sweep_key is not None:
        store = ShardCheckpointStore(sweep_key)
    if queue is not None and store is None:
        raise ValueError(
            "a ShardQueue needs checkpoints (disk_cache + shard_checkpoints "
            "+ sweep_key) — foreign shards are adopted from the store"
        )
    outcome = ShardSweepOutcome(ngraph=ngraph, workers_effective=max(1, workers))
    with ctx.tracer.span(
        "shard:sweep", n=n, depth=depth, workers=workers, lo=lo
    ) as shard_span:
        # ---- 1. serial prefix: sizes lo+1 .. min(depth, n) --------------
        prefix_hi = min(depth, n)
        if lo < prefix_hi:

            def prefix_graphs():
                for size in range(lo + 1, prefix_hi + 1):
                    yield from all_graphs_exactly(size, mutable=False)

            with ctx.tracer.span("shard:prefix", hi=prefix_hi):
                build_neighborhood_graph(
                    lcp,
                    labeled_yes_instances(
                        lcp,
                        prefix_graphs(),
                        id_bound=n,
                        symmetry=symmetry,
                        account=account,
                        kernel=kernel,
                        stats=ctx.stats,
                        **bounds,
                    ),
                    stats=ctx.stats,
                    consumer=consumer,
                    into=ngraph,
                    tracer=ctx.tracer,
                )
            outcome.stopped = consumer is not None and consumer.done
        if outcome.stopped or max(lo, depth) >= n:
            shard_span.set_attributes(shards=0, stopped=outcome.stopped)
            return outcome

        # ---- 2. the shard stage ----------------------------------------
        spec = plan_shards(n, depth, workers)
        roots = level_entries(depth)
        results = _drain_shards(
            lcp, n, plan, ctx, spec, roots, bounds, symmetry, kernel,
            lo, workers, store, queue, outcome, shard_span,
        )

        # ---- 3. merge + replay in serial emission order ----------------
        with ctx.stats.time_stage("shard_replay"), ctx.tracer.span("shard:replay"):
            for size in range(max(lo, depth) + 1, n + 1):
                blocks = []
                for shard in spec.shards:
                    blocks.extend(results[shard.index]["sizes"].get(size, []))
                blocks.sort(key=lambda block: block["mask"])
                for block in blocks:
                    stopped = _replay_chunk(
                        ngraph,
                        block["instances"],
                        block["results"],
                        ctx.stats,
                        consumer,
                        deltas=block["deltas"] if account is not None else None,
                        account=account,
                    )
                    if stopped:
                        outcome.stopped = True
                        break
                    if account is not None:
                        account.add_delta(block["trailing"])
                if outcome.stopped:
                    break
        shard_span.set_attributes(
            shards=outcome.shard_count,
            checkpoint_hits=outcome.checkpoint_hits,
            steals=outcome.steal_count,
            stopped=outcome.stopped,
        )
    _record_gauges(ctx, outcome)
    return outcome


def _drain_shards(
    lcp, n, plan, ctx, spec: ShardSpec, roots, bounds, symmetry, kernel,
    lo, workers, store, queue, outcome: ShardSweepOutcome, shard_span,
) -> dict[int, dict]:
    """Compute/adopt every shard of *spec*; returns ``{index: result}``."""
    bus = ctx.progress
    traced = ctx.tracer.active
    stage_start = time.perf_counter()
    results: dict[int, dict] = {}
    executed_by_pid: dict[int, int] = {}

    def payload_for(shard: Shard) -> dict:
        return {
            "lcp": lcp,
            "n": n,
            "lo": lo,
            "shard": shard,
            "roots": roots[shard.start : shard.stop],
            "bounds": bounds,
            "symmetry": symmetry,
            "generation_kernel": plan.generation_kernel or CONFIG.generation_kernel,
            "kernel": kernel,
            "traced": traced,
        }

    def adopt(shard: Shard, result: dict, computed_here: bool, in_process: bool):
        results[shard.index] = result
        if computed_here:
            ctx.stats.merge(result["stats"])
            ctx.tracer.adopt(result["spans"], parent=shard_span)
            if not in_process:
                # In-process shards already landed their generation work
                # on this process's GLOBAL_STATS; pool shards report it
                # as deltas the parent folds back in.
                for name, delta in result["global_stats"].items():
                    GLOBAL_STATS.incr(name, delta)
            if store is not None:
                store.store(shard, result, stats=ctx.stats)
            if queue is not None:
                queue.complete(shard.id)
            bus.emit(
                "shard_finished",
                shard=shard.id,
                index=shard.index,
                n=n,
                elapsed_s=result["elapsed_s"],
                pid=result["pid"],
            )
            executed_by_pid[result["pid"]] = executed_by_pid.get(result["pid"], 0) + 1

    # -- partition: checkpointed / ours to compute / foreign claims ------
    owned: list[Shard] = []
    foreign: list[Shard] = []
    for shard in spec.shards:
        cached = store.load(shard, stats=ctx.stats) if store is not None else None
        if cached is not None:
            outcome.checkpoint_hits += 1
            bus.emit("shard_checkpoint_hit", shard=shard.id, index=shard.index, n=n)
            if queue is not None:
                queue.complete(shard.id)
            adopt(shard, cached, computed_here=False, in_process=False)
        elif queue is None or queue.claim(shard.id):
            owned.append(shard)
        else:
            foreign.append(shard)

    # -- compute owned shards: pool (work-stealing) or in-process --------
    use_pool = workers > 1 and len(owned) > 1 and _picklable(lcp, ctx.stats)
    if use_pool:
        from ..perf.pool import active_pool, make_pool  # noqa: PLC0415

        pool = active_pool(workers)
        own_pool = pool is None
        if own_pool:
            pool = make_pool(workers)
        else:
            ctx.stats.incr("shared_pool_hits")
        try:
            futures = {}
            for shard in owned:
                bus.emit("shard_started", shard=shard.id, index=shard.index, n=n)
                futures[pool.submit(run_shard, payload_for(shard))] = shard
            for future in as_completed(futures):
                adopt(futures[future], future.result(), True, in_process=False)
        finally:
            if own_pool:
                pool.shutdown()
    else:
        for shard in owned:
            bus.emit("shard_started", shard=shard.id, index=shard.index, n=n)
            adopt(shard, run_shard(payload_for(shard)), True, in_process=True)

    # -- adopt foreign shards from their checkpoints (steal on expiry) ---
    while foreign:
        remaining = []
        for shard in foreign:
            cached = store.load(shard, stats=ctx.stats)
            if cached is not None:
                outcome.checkpoint_hits += 1
                bus.emit(
                    "shard_checkpoint_hit", shard=shard.id, index=shard.index, n=n
                )
                adopt(shard, cached, computed_here=False, in_process=False)
            elif queue.claim(shard.id):  # expired lease stolen
                ctx.stats.incr("shard_lease_steals")
                bus.emit("shard_started", shard=shard.id, index=shard.index, n=n)
                adopt(shard, run_shard(payload_for(shard)), True, in_process=True)
            else:
                remaining.append(shard)
        if remaining:
            time.sleep(_FOREIGN_POLL_S)
        foreign = remaining

    # -- steal accounting ------------------------------------------------
    outcome.shard_count = len(spec.shards)
    executed = sum(executed_by_pid.values())
    if use_pool and executed:
        fair_share = -(-executed // max(1, workers))  # ceil
        outcome.steal_count = sum(
            max(0, count - fair_share) for count in executed_by_pid.values()
        )
    elapsed = time.perf_counter() - stage_start
    if elapsed > 0.0:
        outcome.shards_per_sec = len(spec.shards) / elapsed
    ctx.stats.incr("shards_completed", executed)
    return results


def _picklable(lcp, stats) -> bool:
    try:
        pickle.dumps(lcp)
    except Exception:
        stats.incr("parallel_fallbacks")
        log.warning(
            "%s is not picklable; running shards in-process",
            getattr(lcp, "name", type(lcp).__name__),
        )
        return False
    return True


def _record_gauges(ctx, outcome: ShardSweepOutcome) -> None:
    metrics = ctx.stats.metrics
    if metrics is None or not outcome.shard_count:
        return
    metrics.set_gauge("shard_count", outcome.shard_count)
    metrics.set_gauge("steal_count", outcome.steal_count)
    if outcome.shards_per_sec is not None:
        metrics.set_gauge("shards_per_sec", outcome.shards_per_sec)
