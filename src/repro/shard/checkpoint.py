"""Resumable per-shard results in the content-addressed cache store.

One pickle per completed shard under ``.repro_cache/shards/``, keyed by
the sweep's persistent identity (:func:`repro.engine.backends.disk_key`)
plus the shard's ``(generation version, depth, root range)`` — so a
killed sweep restarts from its completed shards, and no checkpoint can
survive a generation-algorithm change, a different sweep, or a
different partition of the level.

Pickle, not JSON: shard results carry labeled instances and views whose
certificate labels need no codec, and the files are private to the
cache directory (same trust domain as the process that wrote them).
Corrupt or unreadable checkpoints read as misses, never as errors.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from ..obs.logs import get_logger
from ..perf.persist import cache_dir, digest_for
from ..perf.stats import GLOBAL_STATS, PerfStats
from .spec import Shard

log = get_logger("shard.checkpoint")

#: Checkpoint format version; bump when the shard-result layout changes.
SHARD_FORMAT = 1

_SUBDIR = "shards"


class ShardCheckpointStore:
    """Per-shard result files for one sweep identity."""

    def __init__(self, sweep_key: dict, directory: Path | str | None = None) -> None:
        self.sweep_key = sweep_key
        self.root = Path(directory) if directory is not None else cache_dir()

    @property
    def directory(self) -> Path:
        return self.root / _SUBDIR

    def _path(self, shard: Shard) -> Path:
        key = dict(self.sweep_key)
        key["shard_format"] = SHARD_FORMAT
        key.update(shard.key_fields())
        return self.directory / f"{digest_for(key)}.pkl"

    def load(self, shard: Shard, stats: PerfStats | None = None) -> dict | None:
        """The stored result for *shard*, or ``None`` (miss/corrupt)."""
        stats = stats or GLOBAL_STATS
        path = self._path(shard)
        try:
            blob = path.read_bytes()
        except OSError:
            stats.incr("shard_checkpoint_misses")
            return None
        try:
            result = pickle.loads(blob)
        except Exception:  # noqa: BLE001 — a corrupt checkpoint is a miss
            stats.incr("shard_checkpoint_corrupt")
            log.warning("corrupt shard checkpoint %s; recomputing", path.name)
            return None
        stats.incr("shard_checkpoint_hits")
        return result

    def store(self, shard: Shard, result: dict, stats: PerfStats | None = None) -> bool:
        """Atomically persist *result* (spans stripped — they belong to
        the run that computed them, not to a later resume)."""
        stats = stats or GLOBAL_STATS
        path = self._path(shard)
        stored = dict(result)
        stored["spans"] = []
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(pickle.dumps(stored, protocol=pickle.HIGHEST_PROTOCOL))
            os.replace(tmp, path)
        except (OSError, pickle.PicklingError) as exc:
            stats.incr("shard_checkpoint_skips")
            log.warning("skipping shard checkpoint %s: %s", path, exc)
            return False
        stats.incr("shard_checkpoint_writes")
        return True
