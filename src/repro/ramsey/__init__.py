"""The Ramsey-based order-invariant reduction of Section 6."""

from .order_invariant import (
    RamseyOrderInvariantDecoder,
    RamseyReduction,
    ramsey_order_invariant_reduction,
)
from .ramsey import (
    find_monochromatic_set,
    is_monochromatic,
    ramsey_upper_bound_pairs,
    subset_colors,
)
from .types import (
    decoder_type,
    max_view_size,
    structure_catalog,
    structure_of,
    view_with_ids,
)

__all__ = [
    "RamseyOrderInvariantDecoder",
    "RamseyReduction",
    "decoder_type",
    "find_monochromatic_set",
    "is_monochromatic",
    "max_view_size",
    "ramsey_order_invariant_reduction",
    "ramsey_upper_bound_pairs",
    "structure_catalog",
    "structure_of",
    "subset_colors",
    "view_with_ids",
]
