"""The order-invariant reduction of Lemma 6.2, executably.

Pipeline (mirroring the paper's proof):

1. harvest the finite structure catalog of a decoder over a graph family
   (constant certificates + bounded degree ⇒ finitely many structures);
2. color every ``s``-subset of an identifier universe by its *type*
   (:func:`repro.ramsey.types.decoder_type`);
3. Ramsey-search a monochromatic identifier set ``B``;
4. build the order-invariant decoder ``D'``: replace the identifiers of
   an incoming view by order-matching identifiers from ``B`` and run the
   original decoder.

The result provably depends only on identifier order (all id tuples it
ever feeds to ``D`` come from ``B``, rank-matched), and it agrees with
``D`` on every instance whose identifiers are drawn from ``B`` — the
agreement the paper uses to transport strong soundness and hiding.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..certification.decoder import Decoder
from ..errors import ViewError
from ..local.views import View
from .ramsey import find_monochromatic_set
from .types import decoder_type, max_view_size, structure_of, view_with_ids


@dataclass
class RamseyReduction:
    """Artifacts of one Lemma 6.2 run."""

    catalog_size: int
    subset_size: int
    universe: tuple[int, ...]
    monochromatic_set: tuple[int, ...] | None
    type_signature: tuple[bool, ...] | None

    @property
    def succeeded(self) -> bool:
        return self.monochromatic_set is not None


class RamseyOrderInvariantDecoder(Decoder):
    """``D'``: graft order-matched identifiers from the monochromatic set.

    For an incoming view with ``t`` identifiers, the ``t`` smallest
    elements of the monochromatic set are substituted by rank.  Output
    therefore depends only on the view's structure and identifier order.
    """

    def __init__(self, inner: Decoder, monochromatic_set: tuple[int, ...]) -> None:
        self._inner = inner
        self._set = tuple(sorted(monochromatic_set))
        self.radius = inner.radius
        self.anonymous = inner.anonymous

    def decide(self, view: View) -> bool:
        if view.ids is None:
            return self._inner.decide(view)
        if len(view.ids) > len(self._set):
            raise ViewError(
                f"view has {len(view.ids)} identifiers but the monochromatic "
                f"set only provides {len(self._set)}"
            )
        structure = structure_of(view)
        replacement = view_with_ids(
            structure, self._set[: len(view.ids)], id_bound=view.id_bound
        )
        return self._inner.decide(replacement)

    @property
    def name(self) -> str:
        return f"RamseyOrderInvariant({self._inner.name})"


def ramsey_order_invariant_reduction(
    decoder: Decoder,
    catalog: list[View],
    id_universe: tuple[int, ...],
    target_size: int,
) -> tuple[RamseyReduction, RamseyOrderInvariantDecoder | None]:
    """Run the Lemma 6.2 pipeline against a structure catalog.

    *id_universe* plays the role of ℕ (finite, per the substitution
    documented in DESIGN.md); *target_size* is how many identifiers the
    monochromatic set must contain — at least the largest view size, and
    larger if ``D'`` should be usable on bigger neighborhoods.
    """
    subset_size = max(1, max_view_size(catalog))

    def color(subset: tuple[int, ...]):
        return decoder_type(decoder, subset, catalog)

    mono = find_monochromatic_set(
        color, list(id_universe), subset_size, max(target_size, subset_size)
    )
    reduction = RamseyReduction(
        catalog_size=len(catalog),
        subset_size=subset_size,
        universe=tuple(sorted(id_universe)),
        monochromatic_set=mono,
        type_signature=(color(tuple(sorted(mono)[:subset_size])) if mono else None),
    )
    if mono is None:
        return reduction, None
    return reduction, RamseyOrderInvariantDecoder(decoder, mono)
