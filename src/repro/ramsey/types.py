"""Decoder types (Lemma 6.2): splitting a view into identifiers × structure.

A view decomposes into its identifier assignment ``X`` (the sorted tuple
of identifiers it contains) and its *structure* ``S`` (graph, ports,
distances, labels — everything else).  For a fixed decoder ``D``, each
identifier tuple induces the map ``S ↦ D(X, S)``; Lemma 6.2 calls that
map the *type* of ``X``.  With constant certificate size and bounded
degree there are finitely many structures, hence finitely many types —
that finiteness is what lets Ramsey's theorem find a large identifier set
of a single type.

Executably, types are evaluated against a finite catalog of structures
harvested from instances: :func:`structure_catalog` collects distinct
structures, :func:`view_with_ids` grafts an identifier tuple (by rank)
onto a structure, and :func:`decoder_type` evaluates the decoder across
the catalog.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import replace

from ..certification.decoder import Decoder
from ..errors import ViewError
from ..local.instance import Instance
from ..local.views import View, extract_all_views


def structure_of(view: View) -> View:
    """The structure ``S``: the view with identifiers replaced by ranks.

    Rank-normalized rather than stripped, so that grafting a new
    identifier tuple is a pure inverse operation.
    """
    return view.order_normalized()


def view_with_ids(
    structure: View, id_tuple: tuple[int, ...], id_bound: int | None = None
) -> View:
    """Graft a sorted identifier tuple onto a rank-normalized structure.

    The ``j``-th smallest rank receives the ``j``-th smallest identifier,
    so relative order is preserved by construction.  *id_bound* restores
    the known ``N`` (defaults to the largest grafted identifier).
    """
    if structure.ids is None:
        raise ViewError("structure views must carry rank identifiers")
    ranks = sorted(structure.ids)
    chosen = sorted(id_tuple)
    if len(chosen) < len(ranks):
        raise ViewError(
            f"need at least {len(ranks)} identifiers, got {len(chosen)}"
        )
    mapping = {rank: chosen[j] for j, rank in enumerate(ranks)}
    grafted = structure.with_relabeled_ids(mapping)
    if id_bound is not None:
        grafted = replace(grafted, id_bound=max(id_bound, max(grafted.ids)))
    return grafted


def structure_catalog(
    decoder: Decoder, instances: Iterable[Instance]
) -> list[View]:
    """Distinct view structures occurring across *instances*."""
    seen: set[View] = set()
    catalog: list[View] = []
    for instance in instances:
        for _node, view in extract_all_views(instance, decoder.radius, include_ids=True).items():
            structure = structure_of(view)
            if structure not in seen:
                seen.add(structure)
                catalog.append(structure)
    return catalog


def decoder_type(
    decoder: Decoder, id_tuple: tuple[int, ...], catalog: list[View]
) -> tuple[bool, ...]:
    """The type of *id_tuple*: the decoder's verdict on every structure.

    Structures needing more identifiers than *id_tuple* provides are
    evaluated on the prefix ("packing extra identifiers", as the paper
    puts it, is realized by grafting only as many as the structure uses).
    """
    verdicts = []
    for structure in catalog:
        assert structure.ids is not None
        needed = len(structure.ids)
        usable = tuple(sorted(id_tuple)[:needed])
        if len(usable) < needed:
            verdicts.append(False)
            continue
        verdicts.append(bool(decoder.decide(view_with_ids(structure, usable))))
    return tuple(verdicts)


def max_view_size(catalog: list[View]) -> int:
    """The ``s`` of Lemma 6.2: identifiers per view, maximized."""
    return max((len(v.ids or ()) for v in catalog), default=0)
