"""Finite Ramsey search (the executable face of Lemma 6.1).

The paper invokes the infinite hypergraph Ramsey theorem: any finite
coloring of the ``s``-subsets of ``ℕ`` has an infinite monochromatic set.
Executably we use the finite version: for every coloring of the
``s``-subsets of a large enough ``[N]`` there is a monochromatic subset
of any requested size.  :func:`find_monochromatic_set` searches for one
by plain backtracking — on the identifier universes the Lemma 6.2
experiment uses, this terminates quickly and returns an explicit witness
set, which is all the order-invariant reduction needs.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Sequence
from itertools import combinations


def subset_colors(
    color_fn: Callable[[tuple[int, ...]], Hashable],
    universe: Sequence[int],
    subset_size: int,
) -> dict[tuple[int, ...], Hashable]:
    """Evaluate the coloring on every ``subset_size``-subset of *universe*."""
    return {
        subset: color_fn(subset)
        for subset in combinations(sorted(universe), subset_size)
    }


def is_monochromatic(
    color_fn: Callable[[tuple[int, ...]], Hashable],
    candidate: Iterable[int],
    subset_size: int,
) -> bool:
    """All ``subset_size``-subsets of *candidate* share one color."""
    seen: set[Hashable] = set()
    for subset in combinations(sorted(candidate), subset_size):
        seen.add(color_fn(subset))
        if len(seen) > 1:
            return False
    return True


def find_monochromatic_set(
    color_fn: Callable[[tuple[int, ...]], Hashable],
    universe: Sequence[int],
    subset_size: int,
    target_size: int,
) -> tuple[int, ...] | None:
    """A *target_size*-subset of *universe* whose ``subset_size``-subsets
    are monochromatic, or ``None`` if the universe is too small.

    Backtracking with memoized subset colors; the color is fixed by the
    first full subset of the growing candidate, pruning early.
    """
    universe_sorted = sorted(universe)
    if target_size < subset_size:
        return tuple(universe_sorted[:target_size])
    cache: dict[tuple[int, ...], Hashable] = {}

    def color(subset: tuple[int, ...]) -> Hashable:
        if subset not in cache:
            cache[subset] = color_fn(subset)
        return cache[subset]

    def extend(candidate: list[int], start: int, locked: Hashable | None) -> tuple[int, ...] | None:
        if len(candidate) == target_size:
            return tuple(candidate)
        for index in range(start, len(universe_sorted)):
            element = universe_sorted[index]
            new_locked = locked
            ok = True
            if len(candidate) + 1 >= subset_size:
                for subset in combinations(candidate, subset_size - 1):
                    c = color(tuple(sorted((*subset, element))))
                    if new_locked is None:
                        new_locked = c
                    elif c != new_locked:
                        ok = False
                        break
            if not ok:
                continue
            candidate.append(element)
            result = extend(candidate, index + 1, new_locked)
            if result is not None:
                return result
            candidate.pop()
        return None

    return extend([], 0, None)


def ramsey_upper_bound_pairs(colors: int, clique: int) -> int:
    """A classical upper bound for the 2-uniform Ramsey number
    ``R_colors(clique)`` — how large a universe certainly suffices.

    Uses the iterated pigeonhole bound ``R ≤ colors^(colors*(clique-1))+1``
    (crude but finite); the experiments display it next to the much
    smaller universes that empirically suffice.
    """
    if clique <= 1:
        return 1
    return colors ** (colors * (clique - 1)) + 1
