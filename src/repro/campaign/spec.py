"""Campaign specifications and their expansion into cells.

A :class:`CampaignSpec` is declarative data: which schemes, which graph
families, which ``n`` bounds, which ``k``/``r`` values, which alphabet
caps.  :meth:`CampaignSpec.cells` expands the axes into a deterministic,
ordered stream of immutable :class:`Cell` work units — ``n`` innermost
and ascending, so consecutive cells of one sweep family hit the
streaming engine's cross-``n`` warm start.

``None`` in the ``k``/``r`` axes means "the scheme's native value"; it
is resolved against the registry at expansion time so every emitted
cell is fully concrete, and duplicate cells (``k=None`` next to the
explicit native ``k``) collapse to one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from ..certification.lcp import LCP, parametrized
from ..core.registry import make_lcp, scheme_names
from ..engine.plan import ExecutionPlan
from ..graphs.families import graph_family_names


@dataclass(frozen=True)
class Cell:
    """One fully concrete point of the campaign's parameter space.

    Immutable and hashable; ``(scheme, family, n, k, r,
    alphabet_limit)`` is the cell's identity across drivers, stores, and
    reports.
    """

    scheme: str
    family: str
    n: int
    k: int
    r: int
    alphabet_limit: int | None = None

    def key(self) -> tuple:
        return (self.scheme, self.family, self.n, self.k, self.r, self.alphabet_limit)

    def axes(self) -> dict:
        """The cell as a readable dict (report payloads)."""
        return {
            "scheme": self.scheme,
            "family": self.family,
            "n": self.n,
            "k": self.k,
            "r": self.r,
            "alphabet_limit": self.alphabet_limit,
        }

    def label(self) -> str:
        text = f"{self.scheme}[{self.family}] n={self.n} k={self.k} r={self.r}"
        if self.alphabet_limit is not None:
            text += f" |Σ|≤{self.alphabet_limit}"
        return text

    def lcp(self) -> LCP:
        """The cell's scheme, re-parameterized to the cell's ``k``/``r``
        (the registry object itself for native values, so default cells
        keep the pre-campaign cache identity)."""
        return parametrized(make_lcp(self.scheme), k=self.k, radius=self.r)

    def plan(self, base: ExecutionPlan) -> ExecutionPlan:
        """*base* scoped to this cell (family and alphabet axes)."""
        return replace(
            base, graph_family=self.family, alphabet_limit=self.alphabet_limit
        )


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep over the campaign axes.

    * ``schemes`` — registry names (:func:`repro.core.registry.scheme_names`).
    * ``n_values`` — sweep bounds, ascending per family for warm starts.
    * ``k_values`` / ``r_values`` — ``None`` entries mean the scheme's
      native value.
    * ``families`` — named graph families (``"all"`` = no filter).
    * ``alphabet_limits`` — caps on the certificate alphabet
      (``None`` = full alphabet).
    * ``plan`` — the base :class:`ExecutionPlan` every cell starts from;
      cells override only ``graph_family``/``alphabet_limit``.
    """

    schemes: tuple[str, ...]
    n_values: tuple[int, ...]
    k_values: tuple[int | None, ...] = (None,)
    r_values: tuple[int | None, ...] = (None,)
    families: tuple[str, ...] = ("all",)
    alphabet_limits: tuple[int | None, ...] = (None,)
    plan: ExecutionPlan = field(default_factory=ExecutionPlan)

    @classmethod
    def sweep(
        cls,
        schemes,
        n_max: int,
        n_min: int = 1,
        k_values=(None,),
        r_values=(None,),
        families=("all",),
        alphabet_limits=(None,),
        plan: ExecutionPlan | None = None,
    ) -> "CampaignSpec":
        """The common shape: every ``n`` from *n_min* to *n_max*."""
        return cls(
            schemes=tuple(schemes),
            n_values=tuple(range(n_min, n_max + 1)),
            k_values=tuple(k_values),
            r_values=tuple(r_values),
            families=tuple(families),
            alphabet_limits=tuple(alphabet_limits),
            plan=plan if plan is not None else ExecutionPlan(),
        )

    def validate(self) -> list[str]:
        """Every problem with the spec (empty list = valid)."""
        errors = []
        if not self.schemes:
            errors.append("no schemes")
        known = set(scheme_names())
        for scheme in self.schemes:
            if scheme not in known:
                errors.append(f"unknown scheme {scheme!r}")
        known_families = set(graph_family_names())
        for family in self.families:
            if family not in known_families:
                errors.append(f"unknown graph family {family!r}")
        if not self.n_values:
            errors.append("no n values")
        for n in self.n_values:
            if n < 1:
                errors.append(f"n must be >= 1, got {n}")
        for k in self.k_values:
            if k is not None and k < 1:
                errors.append(f"k must be >= 1, got {k}")
        for r in self.r_values:
            if r is not None and r < 1:
                errors.append(f"r must be >= 1, got {r}")
        for limit in self.alphabet_limits:
            if limit is not None and limit < 1:
                errors.append(f"alphabet_limit must be >= 1, got {limit}")
        return errors

    def cells(self) -> Iterator[Cell]:
        """The ordered cell stream: scheme, family, alphabet, r, k
        outermost-to-innermost, then ``n`` ascending — so consecutive
        cells share a sweep family and warm-start each other.  ``None``
        ``k``/``r`` entries resolve to the scheme's native values;
        duplicate cells collapse (first occurrence wins)."""
        errors = self.validate()
        if errors:
            raise ValueError(f"invalid campaign spec: {'; '.join(errors)}")
        seen: set[tuple] = set()
        for scheme in self.schemes:
            native = make_lcp(scheme)
            for family in self.families:
                for limit in self.alphabet_limits:
                    for r in self.r_values:
                        for k in self.k_values:
                            for n in sorted(self.n_values):
                                cell = Cell(
                                    scheme=scheme,
                                    family=family,
                                    n=n,
                                    k=k if k is not None else native.k,
                                    r=r if r is not None else native.radius,
                                    alphabet_limit=limit,
                                )
                                if cell.key() in seen:
                                    continue
                                seen.add(cell.key())
                                yield cell

    def as_dict(self) -> dict:
        """Readable payload form (frontier report header)."""
        return {
            "schemes": list(self.schemes),
            "n_values": list(self.n_values),
            "k_values": list(self.k_values),
            "r_values": list(self.r_values),
            "families": list(self.families),
            "alphabet_limits": list(self.alphabet_limits),
        }
