"""Campaign layer: the paper's parameter space as a first-class object.

Lemma 3.2 is a predicate over (scheme, graph family, ``n``, ``k``,
``r``, certificate alphabet); this package sweeps that space.  A
declarative :class:`CampaignSpec` expands the axes into an ordered
stream of immutable :class:`Cell` work units, :func:`run_campaign`
executes each cell through :func:`repro.engine.decide_hiding` with
per-cell provenance, and the :class:`FrontierReport` records where the
hiding verdict — equivalently, the ``k``-colorability of ``V(D, n)`` —
flips along each axis.
"""

from .driver import CampaignRun, CellResult, run_campaign
from .frontier import (
    FRONTIER_SCHEMA,
    FrontierReport,
    build_frontier_report,
    validate_frontier_report,
)
from .spec import CampaignSpec, Cell

__all__ = [
    "CampaignSpec",
    "Cell",
    "CellResult",
    "CampaignRun",
    "run_campaign",
    "FrontierReport",
    "FRONTIER_SCHEMA",
    "build_frontier_report",
    "validate_frontier_report",
]
