"""The campaign driver: execute every cell, keep per-cell provenance.

:func:`run_campaign` walks the spec's ordered cell stream and answers
each cell through :func:`repro.engine.decide_hiding` — one resolved
base plan, re-scoped per cell for the family/alphabet axes, with the
``k``/``r`` axes passed as real decision inputs.  Every cell lands in a
:class:`CellResult` carrying the verdict, the decision fingerprint, and
the provenance the engine recorded (backend, scan counts, cache tier,
wall time); a cell that raises is recorded as an errored result instead
of aborting the campaign.
"""

from __future__ import annotations

import dataclasses
import hashlib
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable

from ..core.registry import make_lcp
from ..engine.context import RunContext
from ..engine.core import decide_hiding
from ..engine.plan import ExecutionPlan
from ..obs.logs import get_logger
from ..perf.pool import shared_pool
from .spec import CampaignSpec, Cell

log = get_logger("campaign")

#: Provenance fields copied into cell results and report payloads.
_PROVENANCE_FIELDS = (
    "backend",
    "workers",
    "early_exit",
    "instances_scanned",
    "views",
    "edges",
    "memory_cache_hit",
    "disk_cache_hit",
    "warm_started",
    "warm_witness_hit",
    "symmetry_pruned",
    "kernel",
    "shard_count",
    "steal_count",
    "shards_per_sec",
    "wall_time_s",
    "trace_id",
)


@dataclass(frozen=True)
class CellResult:
    """One decided (or errored) cell.

    ``hiding`` is the Lemma 3.2 verdict; ``colorable`` is its
    complement — whether ``V(D, n)`` is ``k``-colorable — recorded
    explicitly because that is the quantity the frontier report tracks.
    ``fingerprint`` digests the verdict's
    :meth:`~repro.engine.verdict.Verdict.decision_fingerprint`, the
    byte-level identity the plan-equivalence suite pins across backends
    and cache tiers.  ``trace_id`` is promoted out of the provenance
    dict so frontier rows join directly against span exports and run
    reports (``None`` for untraced or errored cells).
    """

    cell: Cell
    hiding: bool | None = None
    colorable: bool | None = None
    fingerprint: str | None = None
    provenance: dict | None = None
    wall_time_s: float = 0.0
    error: str | None = None
    trace_id: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def as_dict(self) -> dict:
        return {
            "cell": self.cell.axes(),
            "hiding": self.hiding,
            "colorable": self.colorable,
            "fingerprint": self.fingerprint,
            "provenance": self.provenance,
            "wall_time_s": self.wall_time_s,
            "error": self.error,
            "trace_id": self.trace_id,
        }


@dataclass(frozen=True)
class CampaignRun:
    """A finished campaign: the spec, the resolved base plan, and one
    :class:`CellResult` per expanded cell, in cell-stream order."""

    spec: CampaignSpec
    plan: ExecutionPlan
    results: tuple[CellResult, ...]
    wall_time_s: float

    @property
    def cells_per_sec(self) -> float | None:
        if self.wall_time_s <= 0.0:
            return None
        return len(self.results) / self.wall_time_s

    @property
    def errors(self) -> list[CellResult]:
        return [result for result in self.results if not result.ok]


def run_campaign(
    spec: CampaignSpec,
    ctx: RunContext | None = None,
    progress: Callable[[CellResult], None] | None = None,
) -> CampaignRun:
    """Execute every cell of *spec*; never aborts on a cell error.

    The spec's base plan is resolved once against ``ctx.config`` and
    re-scoped per cell (:meth:`Cell.plan`); ``k``/``r`` travel as
    decision inputs so native-parameter cells answer from the exact
    pre-campaign cache addresses.  *progress* (when given) is called
    with each finished :class:`CellResult` — the CLI's live table.
    """
    if ctx is None:
        ctx = RunContext.default()
    base = spec.plan.resolve(ctx.config)
    results = []
    start = time.perf_counter()
    # The cell stream is deterministic and cheap to expand; materialize
    # it so the bus can announce the total count (the ETA denominator).
    cells = list(spec.cells())
    bus = ctx.progress
    bus.emit(
        "campaign_started",
        total_cells=len(cells),
        schemes=list(spec.schemes),
        trace_id=ctx.tracer.trace_id if ctx.tracer.active else None,
    )
    # One process pool for the whole campaign: parallel cells (chunked
    # builds, sharded sweeps) reuse it via repro.perf.pool.active_pool
    # instead of paying pool spawn/teardown per cell.
    pool_scope = (
        shared_pool(base.workers)
        if base.workers is not None and base.workers > 1
        else nullcontext()
    )
    with pool_scope, ctx.tracer.span(
        "campaign", schemes=",".join(spec.schemes)
    ) as root:
        for cell in cells:
            bus.emit("cell_started", label=cell.label(), cell=cell.axes())
            result = _run_cell(cell, base, ctx)
            results.append(result)
            bus.emit(
                "cell_finished",
                label=cell.label(),
                cell=cell.axes(),
                hiding=result.hiding,
                error=result.error,
                wall_time_s=result.wall_time_s,
                trace_id=result.trace_id,
            )
            if progress is not None:
                progress(result)
        root.set_attributes(
            cells=len(results), errors=sum(1 for r in results if not r.ok)
        )
    elapsed = time.perf_counter() - start
    bus.emit(
        "campaign_finished",
        cells=len(results),
        errors=sum(1 for r in results if not r.ok),
        wall_time_s=elapsed,
    )
    log.info(
        "campaign finished: %d cells in %.2fs (%d errors)",
        len(results),
        elapsed,
        sum(1 for r in results if not r.ok),
    )
    return CampaignRun(
        spec=spec, plan=base, results=tuple(results), wall_time_s=elapsed
    )


def _run_cell(cell: Cell, base: ExecutionPlan, ctx: RunContext) -> CellResult:
    start = time.perf_counter()
    try:
        with ctx.tracer.span("cell", label=cell.label()):
            verdict = decide_hiding(
                make_lcp(cell.scheme),
                cell.n,
                cell.plan(base),
                k=cell.k,
                r=cell.r,
                ctx=ctx,
            )
    except Exception as exc:  # noqa: BLE001 — a bad cell must not kill the sweep
        log.warning("cell %s failed: %s", cell.label(), exc)
        return CellResult(
            cell=cell,
            wall_time_s=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    provenance = dataclasses.asdict(verdict.provenance)
    return CellResult(
        cell=cell,
        hiding=verdict.hiding,
        colorable=None if verdict.hiding is None else not verdict.hiding,
        fingerprint=hashlib.sha256(verdict.decision_fingerprint()).hexdigest()[:32],
        provenance={name: provenance[name] for name in _PROVENANCE_FIELDS},
        wall_time_s=time.perf_counter() - start,
        error=None,
        trace_id=provenance.get("trace_id"),
    )
