"""Frontier reports: where the hiding verdict flips along each axis.

A :class:`FrontierReport` freezes one finished campaign into a single
machine-readable payload: the spec, the resolved base plan (and its
fingerprint), every cell's verdict + provenance, and the **frontier**
itself — each pair of axis-adjacent cells whose hiding verdicts (equiv.
``V(D, n)`` ``k``-colorability) disagree.  Reports share the run-report
infrastructure of :mod:`repro.obs.report`: content-addressed JSON under
``.repro_runs/`` (``$REPRO_RUNS_DIR``), a declared schema, and a
validator CI gates on (:func:`validate_frontier_report`; the benchmark
harness runs it in its ``--frontier-smoke`` leg).
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any

from ..obs.logs import get_logger
from ..obs.report import _digest, plan_fingerprint, runs_dir
from .driver import CampaignRun, CellResult

log = get_logger("campaign.frontier")

#: Schema identifier embedded in (and required of) every frontier report.
FRONTIER_SCHEMA = "repro.frontier-report/v1"

#: Top-level keys every frontier report must carry.
FRONTIER_REQUIRED_KEYS = (
    "schema",
    "created",
    "campaign",
    "plan",
    "plan_fingerprint",
    "cells",
    "flips",
    "summary",
)

#: Cell axes a flip can run along (the numeric/ordered axes; scheme and
#: family are categorical, so "adjacent" is not defined for them).
FLIP_AXES = ("n", "k", "r", "alphabet_limit")

#: Axes of a cell record (spec.Cell.axes() keys).
CELL_AXES = ("scheme", "family", "n", "k", "r", "alphabet_limit")


def _axis_sort_key(value: Any):
    # alphabet_limit=None means "full alphabet": larger than any cap.
    return (value is None, value)


def find_flips(results: tuple[CellResult, ...] | list[CellResult]) -> list[dict]:
    """Verdict flips between axis-adjacent decided cells.

    For each axis in :data:`FLIP_AXES`: cells agreeing on every *other*
    axis are sorted along it, and each adjacent pair with differing
    ``hiding`` verdicts (errored and ``None``-verdict cells excluded)
    is one flip record.
    """
    flips = []
    decided = [r for r in results if r.ok and r.hiding is not None]
    for axis in FLIP_AXES:
        groups: dict[tuple, list[CellResult]] = {}
        for result in decided:
            axes = result.cell.axes()
            anchor = tuple((name, axes[name]) for name in CELL_AXES if name != axis)
            groups.setdefault(anchor, []).append(result)
        for anchor, members in groups.items():
            members.sort(key=lambda r: _axis_sort_key(r.cell.axes()[axis]))
            for before, after in zip(members, members[1:]):
                if before.hiding == after.hiding:
                    continue
                flips.append(
                    {
                        "axis": axis,
                        "at": dict(anchor),
                        "from": {
                            "value": before.cell.axes()[axis],
                            "hiding": before.hiding,
                            "colorable": before.colorable,
                        },
                        "to": {
                            "value": after.cell.axes()[axis],
                            "hiding": after.hiding,
                            "colorable": after.colorable,
                        },
                    }
                )
    return flips


class FrontierReport:
    """An immutable-by-convention frontier payload plus IO helpers
    (same content-addressing discipline as
    :class:`repro.obs.report.RunReport`)."""

    def __init__(self, payload: dict) -> None:
        self.payload = payload

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_run(cls, run: CampaignRun, meta: dict | None = None) -> "FrontierReport":
        flips = find_flips(run.results)
        by_axis: dict[str, int] = {}
        for flip in flips:
            by_axis[flip["axis"]] = by_axis.get(flip["axis"], 0) + 1
        decided = [r for r in run.results if r.ok and r.hiding is not None]
        payload = {
            "schema": FRONTIER_SCHEMA,
            "created": time.time(),
            "campaign": run.spec.as_dict(),
            "plan": dataclasses.asdict(run.plan),
            "plan_fingerprint": plan_fingerprint(run.plan),
            "cells": [result.as_dict() for result in run.results],
            "flips": flips,
            "summary": {
                "cells": len(run.results),
                "errors": sum(1 for r in run.results if not r.ok),
                "hiding": sum(1 for r in decided if r.hiding),
                "colorable": sum(1 for r in decided if r.colorable),
                "undecided": sum(1 for r in run.results if r.ok and r.hiding is None),
                "flips": len(flips),
                "flips_by_axis": by_axis,
                "wall_time_s": round(run.wall_time_s, 6),
                "cells_per_sec": (
                    None if run.cells_per_sec is None else round(run.cells_per_sec, 3)
                ),
            },
        }
        if meta:
            payload["meta"] = meta
        return cls(payload)

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------

    @property
    def digest(self) -> str:
        return _digest(self.payload)

    def write(
        self, path: str | Path | None = None, directory: str | Path | None = None
    ) -> Path:
        """Write the content-addressed canonical file (and, when *path*
        is given, an identical copy there).  Returns the canonical path."""
        blob = json.dumps(self.payload, indent=2, sort_keys=True, ensure_ascii=False)
        root = Path(directory) if directory is not None else runs_dir()
        root.mkdir(parents=True, exist_ok=True)
        canonical = root / f"{self.digest}.json"
        canonical.write_text(blob + "\n", encoding="utf-8")
        if path is not None:
            out = Path(path)
            if out.parent != Path(""):
                out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(blob + "\n", encoding="utf-8")
        log.info("frontier report %s written to %s", self.digest, canonical)
        return canonical

    @classmethod
    def load(
        cls, ref: str | Path, directory: str | Path | None = None
    ) -> "FrontierReport":
        """Load a report by path, or by digest under the runs dir."""
        path = Path(ref)
        if not path.is_file():
            root = Path(directory) if directory is not None else runs_dir()
            candidate = root / f"{ref}.json"
            if not candidate.is_file():
                raise FileNotFoundError(
                    f"no frontier report at {ref!r} or {candidate}"
                )
            path = candidate
        return cls(json.loads(path.read_text(encoding="utf-8")))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        """Human summary: header, the frontier, then one line per cell."""
        p = self.payload
        summary = p["summary"]
        campaign = p["campaign"]
        lines = [
            f"frontier report {self.digest}",
            f"  schema:     {p['schema']}",
            f"  campaign:   schemes={','.join(campaign['schemes'])} "
            f"n={min(campaign['n_values'])}..{max(campaign['n_values'])} "
            f"k={campaign['k_values']} r={campaign['r_values']} "
            f"families={','.join(campaign['families'])}",
            f"  plan fp:    {p['plan_fingerprint']}",
            f"  cells:      {summary['cells']} "
            f"({summary['hiding']} hiding / {summary['colorable']} colorable / "
            f"{summary['undecided']} undecided / {summary['errors']} errors)",
            f"  throughput: {summary['cells_per_sec']} cells/s "
            f"in {summary['wall_time_s']}s",
            f"  flips:      {summary['flips']} {summary['flips_by_axis']}",
        ]
        for flip in p["flips"]:
            at = flip["at"]
            fixed = " ".join(f"{name}={at[name]}" for name in sorted(at))
            lines.append(
                f"    {flip['axis']}: {flip['from']['value']} -> "
                f"{flip['to']['value']}  hiding {flip['from']['hiding']} -> "
                f"{flip['to']['hiding']}  [{fixed}]"
            )
        lines.append("  cells:")
        for record in p["cells"]:
            cell = record["cell"]
            verdict = (
                f"ERROR: {record['error']}"
                if record["error"] is not None
                else f"hiding={record['hiding']}"
            )
            provenance = record.get("provenance") or {}
            detail = ""
            if provenance:
                detail = (
                    f"  ({provenance.get('views')} views, "
                    f"{provenance.get('edges')} edges, "
                    f"{provenance.get('backend')})"
                )
            lines.append(
                f"    {cell['scheme']}[{cell['family']}] n={cell['n']} "
                f"k={cell['k']} r={cell['r']} "
                f"alphabet={cell['alphabet_limit'] or 'full'}: {verdict}{detail}"
            )
        return "\n".join(lines)


def build_frontier_report(run: CampaignRun, meta: dict | None = None) -> FrontierReport:
    """Functional alias for :meth:`FrontierReport.from_run`."""
    return FrontierReport.from_run(run, meta=meta)


def validate_frontier_report(payload: dict) -> list[str]:
    """Schema-gate a frontier payload; returns every violation found
    (empty list = valid).  Checked: the schema tag, required keys, cell
    record shape, flip records referencing known axes with genuinely
    differing verdicts, and summary counts agreeing with the cell list.
    """
    errors = []
    if payload.get("schema") != FRONTIER_SCHEMA:
        errors.append(
            f"schema is {payload.get('schema')!r}, expected {FRONTIER_SCHEMA!r}"
        )
    for key in FRONTIER_REQUIRED_KEYS:
        if key not in payload:
            errors.append(f"missing key {key!r}")
    cells = payload.get("cells")
    if not isinstance(cells, list) or not cells:
        errors.append("cells must be a non-empty list")
        cells = []
    for i, record in enumerate(cells):
        if not isinstance(record, dict):
            errors.append(f"cells[{i}] is not an object")
            continue
        # ``trace_id`` is required as a key (joinability contract) but
        # may be null — untraced campaigns have nothing to join.
        for key in ("cell", "hiding", "colorable", "fingerprint", "error", "trace_id"):
            if key not in record:
                errors.append(f"cells[{i}] missing {key!r}")
        axes = record.get("cell")
        if not isinstance(axes, dict):
            errors.append(f"cells[{i}].cell is not an object")
            continue
        for axis in CELL_AXES:
            if axis not in axes:
                errors.append(f"cells[{i}].cell missing axis {axis!r}")
        if record.get("error") is None and record.get("hiding") is not None:
            if record.get("colorable") != (not record["hiding"]):
                errors.append(
                    f"cells[{i}]: colorable must be the complement of hiding"
                )
            if not record.get("fingerprint"):
                errors.append(f"cells[{i}]: decided cell without a fingerprint")
    flips = payload.get("flips")
    if not isinstance(flips, list):
        errors.append("flips must be a list")
        flips = []
    for i, flip in enumerate(flips):
        if flip.get("axis") not in FLIP_AXES:
            errors.append(f"flips[{i}]: unknown axis {flip.get('axis')!r}")
        for side in ("from", "to"):
            if not isinstance(flip.get(side), dict):
                errors.append(f"flips[{i}] missing side {side!r}")
        if (
            isinstance(flip.get("from"), dict)
            and isinstance(flip.get("to"), dict)
            and flip["from"].get("hiding") == flip["to"].get("hiding")
        ):
            errors.append(f"flips[{i}]: verdicts do not differ")
    summary = payload.get("summary")
    if isinstance(summary, dict) and cells:
        recounted = {
            "cells": len(cells),
            "errors": sum(
                1 for c in cells if isinstance(c, dict) and c.get("error") is not None
            ),
            "flips": len(flips),
        }
        for name, expected in recounted.items():
            if summary.get(name) != expected:
                errors.append(
                    f"summary.{name} is {summary.get(name)}, expected {expected}"
                )
    elif not isinstance(summary, dict):
        errors.append("summary must be an object")
    return errors
