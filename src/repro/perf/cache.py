"""Caches for the V(D, n) hot path.

Three layers, all bounded LRUs:

* :class:`LRUCache` — the generic store (also used by
  :mod:`repro.graphs.encoding` for canonical forms);
* :class:`ViewLayoutCache` — view-layout templates per
  ``(graph, ports, ids, id_bound, radius, include_ids)`` base, so a sweep
  that re-labels one base thousands of times extracts and canonicalizes
  its views exactly once and instantiates the rest with cheap
  :func:`repro.local.views.relabel_view` calls;
* :class:`DecisionMemo` — ``decoder.decide`` verdicts per canonical view.
  Accepting views repeat massively across labelings and instances, so hit
  rates above 90% are typical even on small sweeps.

Identity keys.  Bases and decoders are keyed by ``id()`` of their
component objects; every cache entry keeps a strong reference to those
objects, so an id can never be recycled while its entry is alive.
Imports of :mod:`repro.local.views` are deferred to call time to keep
this module importable from the bottom graph layer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from .config import CONFIG
from .stats import GLOBAL_STATS, PerfStats

_MISSING = object()


class LRUCache:
    """A bounded mapping with least-recently-used eviction."""

    __slots__ = ("maxsize", "_data", "hits", "misses")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("LRUCache needs maxsize >= 1")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key, default=None):
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def get_or_compute(self, key, compute: Callable[[], Any]):
        value = self.get(key, _MISSING)
        if value is _MISSING:
            value = compute()
            self.put(key, value)
        return value

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def items(self):
        """Snapshot of ``(key, value)`` pairs, least-recent first.

        Used by the pool initializer to ship warm cache contents to
        worker processes; does not touch hit/miss accounting."""
        return list(self._data.items())

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0


class ViewLayoutCache:
    """View-layout templates, reusable across labelings of one base."""

    __slots__ = ("_lru",)

    def __init__(self, maxsize: int | None = None) -> None:
        self._lru = LRUCache(maxsize or CONFIG.layout_cache_size)

    @staticmethod
    def _key(instance, radius: int, include_ids: bool) -> tuple:
        return (
            id(instance.graph),
            id(instance.ports),
            id(instance.ids),
            instance.id_bound,
            radius,
            include_ids,
        )

    def layouts_for(
        self, instance, radius: int, include_ids: bool, stats: PerfStats | None = None
    ) -> dict:
        """``{node: (template, label_order)}`` for the base of *instance*."""
        from ..local.views import extract_view_layouts  # noqa: PLC0415

        stats = stats or GLOBAL_STATS
        key = self._key(instance, radius, include_ids)
        entry = self._lru.get(key)
        if entry is not None:
            stats.incr("layout_hits")
            return entry[1]
        stats.incr("layout_misses")
        layouts = extract_view_layouts(instance, radius, include_ids=include_ids)
        stats.incr("views_extracted", len(layouts))
        # The anchor pins graph/ports/ids so their ids stay unambiguous
        # for as long as this entry lives.
        anchor = (instance.graph, instance.ports, instance.ids)
        self._lru.put(key, (anchor, layouts))
        return layouts

    def labeled_views(
        self, instance, radius: int, include_ids: bool, stats: PerfStats | None = None
    ) -> dict:
        """Views of every node of a labeled instance, via cached templates.

        Equivalent to :func:`repro.local.views.extract_all_views` —
        canonicalization never depends on labels — but re-extraction is
        replaced by tuple rebuilds on layout hits.
        """
        from ..local.views import relabel_view  # noqa: PLC0415

        stats = stats or GLOBAL_STATS
        layouts = self.layouts_for(instance, radius, include_ids, stats=stats)
        labeling = instance.labeling
        stats.incr("views_relabeled", len(layouts))
        if labeling is None:
            return {v: template for v, (template, _order) in layouts.items()}
        return {
            v: relabel_view(template, order, labeling)
            for v, (template, order) in layouts.items()
        }

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()


class DecisionMemo:
    """Memoized ``decoder.decide``, keyed by canonical view.

    Sound exactly when the decoder is a pure function of the view — the
    defining property of a decoder in the LCP model.  One memo belongs to
    one decoder object; use :func:`shared_decision_memo` to get the
    process-wide memo for a given decoder.
    """

    __slots__ = ("decoder", "_lru")

    def __init__(self, decoder, maxsize: int | None = None) -> None:
        self.decoder = decoder
        self._lru = LRUCache(maxsize or CONFIG.decision_memo_size)

    def decide(self, view, stats: PerfStats | None = None) -> bool:
        stats = stats or GLOBAL_STATS
        verdict = self._lru.get(view, _MISSING)
        if verdict is not _MISSING:
            stats.incr("memo_hits")
            return verdict
        stats.incr("memo_misses")
        verdict = self.decoder.decide(view)
        self._lru.put(view, verdict)
        return verdict

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    def __len__(self) -> int:
        return len(self._lru)

    def clear(self) -> None:
        self._lru.clear()


# ----------------------------------------------------------------------
# Shared process-wide instances
# ----------------------------------------------------------------------

_DEFAULT_LAYOUT_CACHE: ViewLayoutCache | None = None

#: Decoder-object id -> DecisionMemo; bounded so abandoned decoders from
#: long sessions eventually drop out.  Each memo keeps the decoder alive
#: (its `decoder` attribute), so ids cannot be recycled while mapped.
_MEMO_REGISTRY = LRUCache(64)


def default_layout_cache() -> ViewLayoutCache:
    """The process-wide shared layout cache."""
    global _DEFAULT_LAYOUT_CACHE
    if _DEFAULT_LAYOUT_CACHE is None:
        _DEFAULT_LAYOUT_CACHE = ViewLayoutCache(CONFIG.layout_cache_size)
    return _DEFAULT_LAYOUT_CACHE


def shared_decision_memo(decoder) -> DecisionMemo:
    """The process-wide memo for *decoder* (created on first use).

    Memos are keyed per decoder object, so a scheme and its deliberately
    weakened variants (distinct decoder instances) never share verdicts.
    """
    return _MEMO_REGISTRY.get_or_compute(
        id(decoder), lambda: DecisionMemo(decoder, CONFIG.decision_memo_size)
    )


def clear_shared_caches() -> None:
    """Drop every process-wide cache (benchmarks measuring cold paths)."""
    if _DEFAULT_LAYOUT_CACHE is not None:
        _DEFAULT_LAYOUT_CACHE.clear()
    _MEMO_REGISTRY.clear()


# ----------------------------------------------------------------------
# Convenience wrappers used by the sweep pipeline
# ----------------------------------------------------------------------


def layouts_for_instance(
    instance, radius: int, include_ids: bool, stats: PerfStats | None = None
) -> dict:
    """Layout templates via the shared cache, honoring the config switch."""
    from ..local.views import extract_view_layouts  # noqa: PLC0415

    if not CONFIG.layout_cache:
        return extract_view_layouts(instance, radius, include_ids=include_ids)
    return default_layout_cache().layouts_for(
        instance, radius, include_ids, stats=stats
    )


def memoized_decide(decoder, stats: PerfStats | None = None) -> Callable[[Any], bool]:
    """``decoder.decide`` through the shared memo (or raw when disabled).

    The returned closure inlines the memo's hit path — one dict probe,
    no intermediate frames — because the sweeps call it once per (node,
    labeling) pair and the hit rate is typically above 90%.
    """
    if not CONFIG.decision_memo:
        return decoder.decide
    memo = shared_decision_memo(decoder)
    lru = memo._lru
    data = lru._data
    raw_decide = decoder.decide
    counters = (stats or GLOBAL_STATS).counters

    def decide(view) -> bool:
        verdict = data.get(view, _MISSING)
        if verdict is not _MISSING:
            data.move_to_end(view)
            lru.hits += 1
            counters["memo_hits"] = counters.get("memo_hits", 0) + 1
            return verdict
        lru.misses += 1
        counters["memo_misses"] = counters.get("memo_misses", 0) + 1
        verdict = raw_decide(view)
        lru.put(view, verdict)
        return verdict

    return decide
