"""A shared process pool for the parallel builder and the shard executor.

Pool spawn/teardown costs hundreds of milliseconds per worker — paying
it once per campaign *cell* dominated small-cell sweeps.  This module
owns one process-wide :class:`~concurrent.futures.ProcessPoolExecutor`
that long-lived drivers (:func:`repro.campaign.driver.run_campaign`, the
benchmark harness) open around their whole loop with
:func:`shared_pool`; inner parallel stages pick it up through
:func:`active_pool` instead of building their own.

Workers are initialized exactly once with every warm cache the parent
can ship: the graph-family representatives (the PR 5 pattern) *and* the
kernel acceptance tables — previously rebuilt cold in every worker, one
full ``a ** m``-row decode sweep per template per worker.
"""

from __future__ import annotations

import contextlib
from concurrent.futures import ProcessPoolExecutor

from ..obs.logs import get_logger

log = get_logger("perf.pool")

_ACTIVE_POOL: ProcessPoolExecutor | None = None
_ACTIVE_WORKERS: int = 0


def pool_initializer(family_snapshot: dict, table_snapshot: dict) -> None:
    """Worker initializer: prime the family cache and the kernel tables.

    Runs once per worker process.  Both snapshots are picklable by
    construction (:func:`repro.graphs.families.family_cache_snapshot`,
    :func:`repro.kernel.tables.kernel_tables_snapshot`)."""
    from ..graphs.families import prime_family_cache  # noqa: PLC0415
    from ..kernel.tables import prime_kernel_tables  # noqa: PLC0415

    prime_family_cache(family_snapshot)
    prime_kernel_tables(table_snapshot)


def warm_snapshots() -> tuple[dict, dict]:
    """The parent's current ``(family, kernel-table)`` warm state."""
    from ..graphs.families import family_cache_snapshot  # noqa: PLC0415
    from ..kernel.tables import kernel_tables_snapshot  # noqa: PLC0415

    return family_cache_snapshot(), kernel_tables_snapshot()


def make_pool(workers: int) -> ProcessPoolExecutor:
    """A fresh pool with the standard warm-state initializer."""
    family_snapshot, table_snapshot = warm_snapshots()
    return ProcessPoolExecutor(
        max_workers=workers,
        initializer=pool_initializer,
        initargs=(family_snapshot, table_snapshot),
    )


def active_pool(workers: int | None = None) -> ProcessPoolExecutor | None:
    """The shared pool, when one is open and large enough for *workers*.

    Returns ``None`` when no :func:`shared_pool` scope is active or the
    open pool has fewer workers than requested (callers then build their
    own); ``workers=None`` accepts any open pool."""
    if _ACTIVE_POOL is None:
        return None
    if workers is not None and _ACTIVE_WORKERS < workers:
        return None
    return _ACTIVE_POOL


@contextlib.contextmanager
def shared_pool(workers: int):
    """Scope a shared pool: inner parallel stages reuse it via
    :func:`active_pool` instead of paying spawn/teardown per call.

    Re-entrant: a nested scope whose request fits the open pool reuses
    it; a larger request opens its own (and restores the outer pool on
    exit).  ``workers <= 1`` is a no-op scope yielding ``None``.
    """
    global _ACTIVE_POOL, _ACTIVE_WORKERS
    if workers <= 1:
        yield None
        return
    if _ACTIVE_POOL is not None and _ACTIVE_WORKERS >= workers:
        yield _ACTIVE_POOL
        return
    outer_pool, outer_workers = _ACTIVE_POOL, _ACTIVE_WORKERS
    pool = make_pool(workers)
    _ACTIVE_POOL, _ACTIVE_WORKERS = pool, workers
    log.debug("shared pool opened: %d workers", workers)
    try:
        yield pool
    finally:
        _ACTIVE_POOL, _ACTIVE_WORKERS = outer_pool, outer_workers
        pool.shutdown()
        log.debug("shared pool closed: %d workers", workers)
