"""Lightweight counters and stage timers for the V(D, n) pipeline.

A :class:`PerfStats` object accumulates integer counters (instances
scanned, views extracted vs. relabeled, memo hits/misses, ...) and
wall-clock time per named stage.  The builders update :data:`GLOBAL_STATS`
by default; callers who want isolated measurements (benchmarks, tests)
pass their own instance — the engine's :class:`~repro.engine.context.
RunContext` threads one stats handle through the whole decision path, so
parallel builds accumulate into worker-local instances and :meth:`merge`
back instead of racing on the shared global.

A stats object can additionally be *bound* to a
:class:`~repro.obs.metrics.MetricsRegistry`
(:meth:`PerfStats.bind_metrics`): every counter increment is then
mirrored into a registry counter and every ``time_stage`` interval is
observed into a ``<stage>_seconds`` histogram, which is how the metrics
layer subsumes this counter bag without touching any call site.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class PerfStats:
    """Mutable bag of counters and stage timings."""

    __slots__ = ("counters", "timers", "metrics")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}
        #: Optional MetricsRegistry mirror (see :meth:`bind_metrics`).
        self.metrics = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def bind_metrics(self, registry) -> "PerfStats":
        """Mirror every future increment/stage time into *registry*
        (pass ``None`` to unbind); returns self."""
        self.metrics = registry
        return self

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount
        if self.metrics is not None:
            self.metrics.incr(name, amount)

    def add_time(self, stage: str, seconds: float) -> None:
        self.timers[stage] = self.timers.get(stage, 0.0) + seconds
        if self.metrics is not None:
            self.metrics.observe(f"{stage}_seconds", seconds)

    @contextmanager
    def time_stage(self, stage: str):
        """Accumulate wall time of the enclosed block under *stage*."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add_time(stage, time.perf_counter() - start)

    def merge(self, other: "PerfStats | dict") -> None:
        """Fold another stats object (or its ``as_dict`` form) into this one."""
        if isinstance(other, PerfStats):
            counters, timers = other.counters, other.timers
        else:
            counters, timers = other.get("counters", {}), other.get("timers", {})
        for name, amount in counters.items():
            self.incr(name, amount)
        for stage, seconds in timers.items():
            self.add_time(stage, seconds)

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()

    # ------------------------------------------------------------------
    # Queries and rendering
    # ------------------------------------------------------------------

    def get(self, name: str) -> int:
        return self.counters.get(name, 0)

    def hit_rate(self, prefix: str) -> float | None:
        """``<prefix>_hits / (<prefix>_hits + <prefix>_misses)``, or ``None``."""
        hits = self.counters.get(f"{prefix}_hits", 0)
        misses = self.counters.get(f"{prefix}_misses", 0)
        total = hits + misses
        if total == 0:
            return None
        return hits / total

    def as_dict(self) -> dict:
        return {"counters": dict(self.counters), "timers": dict(self.timers)}

    def render(self) -> str:
        """Human-readable summary block (used by the CLI and reports)."""
        lines = ["perf stats:"]
        for name in sorted(self.counters):
            lines.append(f"  {name:<28s} {self.counters[name]}")
        for prefix in ("layout", "memo", "family_cache", "canonical", "disk"):
            rate = self.hit_rate(prefix)
            if rate is not None:
                lines.append(f"  {prefix + '_hit_rate':<28s} {rate:.1%}")
        for stage in sorted(self.timers):
            lines.append(f"  {stage + ' (s)':<28s} {self.timers[stage]:.3f}")
        if len(lines) == 1:
            lines.append("  (no activity recorded)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"PerfStats(counters={len(self.counters)}, timers={len(self.timers)})"


#: Process-wide accumulator; builders fall back to this when no stats
#: object is passed explicitly.
GLOBAL_STATS = PerfStats()
