"""Performance subsystem: caches, counters, and the parallel builder.

The Lemma 3.1 sweep (``yes_instances_up_to`` → ``build_neighborhood_graph``)
is the hot path of the whole repository; everything here exists to make it
run as fast as the hardware allows without changing a single result:

* :mod:`repro.perf.config` — global knobs (:data:`CONFIG`,
  :func:`configure`, :func:`overridden`);
* :mod:`repro.perf.stats` — counters and stage timers
  (:class:`PerfStats`, :data:`GLOBAL_STATS`);
* :mod:`repro.perf.cache` — the view-layout template cache and the
  decoder decision memo;
* :mod:`repro.perf.parallel` — the process-pool neighborhood-graph
  builder (loaded lazily; it sits above the neighborhood layer).
"""

from .cache import (
    DecisionMemo,
    LRUCache,
    ViewLayoutCache,
    clear_shared_caches,
    default_layout_cache,
    layouts_for_instance,
    memoized_decide,
    shared_decision_memo,
)
from .config import CONFIG, PerfConfig, configure, overridden
from .persist import (
    CACHE_VERSION,
    PersistentVerdictCache,
    cache_dir,
    default_verdict_cache,
)
from .stats import GLOBAL_STATS, PerfStats

__all__ = [
    "CACHE_VERSION",
    "CONFIG",
    "DecisionMemo",
    "GLOBAL_STATS",
    "LRUCache",
    "PerfConfig",
    "PerfStats",
    "PersistentVerdictCache",
    "ViewLayoutCache",
    "build_neighborhood_graph_parallel",
    "cache_dir",
    "clear_shared_caches",
    "configure",
    "default_layout_cache",
    "default_verdict_cache",
    "layouts_for_instance",
    "memoized_decide",
    "overridden",
    "shared_decision_memo",
]


def __getattr__(name: str):
    # The parallel builder imports the neighborhood layer, which imports
    # this package; resolving it lazily keeps the import graph acyclic.
    if name == "build_neighborhood_graph_parallel":
        from .parallel import build_neighborhood_graph_parallel  # noqa: PLC0415

        return build_neighborhood_graph_parallel
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
