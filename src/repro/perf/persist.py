"""Persistent on-disk cache for streaming hiding sweeps.

The full Lemma 3.1 sweep is deterministic per ``(scheme, decoder,
parameters)``, so its verdict can outlive the process.  This module
stores one JSON-lines file per sweep under ``.repro_cache/hiding/``:

* the file name is content-addressed — a SHA-256 digest of the canonical
  identity key (LCP type/name, decoder name, ``k``, radius, anonymity,
  ``n``, and every enumeration bound) plus the cache format version;
* line 1 is the **header** record (version, the readable key, counts) —
  readable with ``head -1``, and enough for ``repro cache stats``;
* line 2 is the **body** record: the scanned views (fully serialized),
  edges, the witness walk / coloring, and scan counters.

Version bumps (:data:`CACHE_VERSION`) invalidate every old entry: a
reader that finds a different version treats the entry as a miss and
overwrites it on the next store.  Entries whose certificate labels
cannot be represented in JSON are skipped rather than corrupted
(counted as ``persist_skips``).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

from ..obs.logs import get_logger
from .config import CONFIG
from .stats import GLOBAL_STATS, PerfStats

log = get_logger("perf.persist")

#: Format version; bump whenever the payload layout or the semantics of
#: the sweep change in a way that stale entries must not survive.
CACHE_VERSION = 1

_SUBDIR = "hiding"


def cache_dir() -> Path:
    """The active cache directory (config > environment > ``./.repro_cache``)."""
    if CONFIG.disk_cache_dir:
        return Path(CONFIG.disk_cache_dir)
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(".repro_cache")


# ----------------------------------------------------------------------
# Label / view codecs
# ----------------------------------------------------------------------

_PRIMITIVES = (str, int, float, bool, type(None))


def encode_label(label: Any) -> Any:
    """JSON-safe encoding of a certificate label.

    Primitives pass through; tuples/lists are tagged so the distinction
    survives the round trip (certificates are hashable, hence tuples).
    Unsupported types raise ``TypeError`` — callers skip persistence.
    """
    if isinstance(label, bool) or label is None or isinstance(label, (int, float, str)):
        return label
    if isinstance(label, tuple):
        return {"t": [encode_label(x) for x in label]}
    if isinstance(label, list):
        return {"l": [encode_label(x) for x in label]}
    if isinstance(label, frozenset):
        return {"fs": sorted((encode_label(x) for x in label), key=repr)}
    raise TypeError(f"cannot persist certificate label of type {type(label).__name__}")


def decode_label(payload: Any) -> Any:
    if isinstance(payload, dict):
        if "t" in payload:
            return tuple(decode_label(x) for x in payload["t"])
        if "l" in payload:
            return [decode_label(x) for x in payload["l"]]
        if "fs" in payload:
            return frozenset(decode_label(x) for x in payload["fs"])
        raise ValueError(f"unknown label encoding {payload!r}")
    return payload


def encode_view(view) -> dict:
    return {
        "radius": view.radius,
        "dist": list(view.dist),
        "edges": [list(e) for e in view.edges],
        "ports": [list(p) for p in view.ports],
        "ids": None if view.ids is None else list(view.ids),
        "id_bound": view.id_bound,
        "labels": [encode_label(label) for label in view.labels],
    }


def decode_view(payload: dict):
    from ..local.views import View  # noqa: PLC0415

    return View(
        radius=payload["radius"],
        dist=tuple(payload["dist"]),
        edges=tuple((a, b) for a, b in payload["edges"]),
        ports=tuple((a, b) for a, b in payload["ports"]),
        ids=None if payload["ids"] is None else tuple(payload["ids"]),
        id_bound=payload["id_bound"],
        labels=tuple(decode_label(label) for label in payload["labels"]),
    )


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------


def digest_for(key: dict) -> str:
    """Content address: SHA-256 over the canonical key + format version."""
    canonical = json.dumps(
        {"version": CACHE_VERSION, "key": key}, sort_keys=True, ensure_ascii=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:32]


class PersistentVerdictCache:
    """JSON-lines verdict store under ``<dir>/hiding/<digest>.jsonl``."""

    def __init__(self, directory: Path | str | None = None) -> None:
        self.root = Path(directory) if directory is not None else cache_dir()

    @property
    def _dir(self) -> Path:
        return self.root / _SUBDIR

    def _path(self, key: dict) -> Path:
        return self._dir / f"{digest_for(key)}.jsonl"

    def load(self, key: dict, stats: PerfStats | None = None) -> dict | None:
        """The body record for *key*, or ``None`` on miss/stale version."""
        stats = stats or GLOBAL_STATS
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                header = json.loads(fh.readline())
                if header.get("version") != CACHE_VERSION:
                    stats.incr("disk_misses")
                    log.debug("stale-version entry at %s", path.name)
                    return None
                body = json.loads(fh.readline())
        except (OSError, ValueError):
            stats.incr("disk_misses")
            log.debug("disk miss for %s", path.name)
            return None
        stats.incr("disk_hits")
        log.debug("disk hit for %s", path.name)
        return body

    def store(self, key: dict, body: dict, stats: PerfStats | None = None) -> bool:
        """Write header+body atomically; returns False when the payload
        cannot be serialized (unsupported label types)."""
        stats = stats or GLOBAL_STATS
        header = {
            "version": CACHE_VERSION,
            "key": key,
            "views": len(body.get("views", ())),
            "edges": len(body.get("edges", ())),
        }
        try:
            blob = (
                json.dumps(header, ensure_ascii=False)
                + "\n"
                + json.dumps(body, ensure_ascii=False)
                + "\n"
            )
        except (TypeError, ValueError):
            stats.incr("persist_skips")
            log.warning(
                "skipping persist for %s: payload not JSON-serializable",
                key.get("lcp_name", "?"),
            )
            return False
        path = self._path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_text(blob, encoding="utf-8")
            os.replace(tmp, path)
        except OSError as exc:
            stats.incr("persist_skips")
            log.warning("skipping persist to %s: %s", path, exc)
            return False
        stats.incr("persist_writes")
        log.debug("stored verdict at %s", path.name)
        return True

    # ------------------------------------------------------------------
    # Maintenance (the `repro cache` CLI)
    # ------------------------------------------------------------------

    def entries(self) -> list[dict]:
        """Header records of every entry (stale-version ones included)."""
        out = []
        if not self._dir.is_dir():
            return out
        for path in sorted(self._dir.glob("*.jsonl")):
            try:
                with path.open("r", encoding="utf-8") as fh:
                    header = json.loads(fh.readline())
            except (OSError, ValueError):
                header = {"version": None, "key": {"corrupt": path.name}}
            header["file"] = path.name
            header["bytes"] = path.stat().st_size if path.exists() else 0
            out.append(header)
        return out

    def stats_summary(self) -> dict:
        entries = self.entries()
        return {
            "directory": str(self._dir),
            "entries": len(entries),
            "bytes": sum(e["bytes"] for e in entries),
            "current_version": CACHE_VERSION,
            "stale_entries": sum(
                1 for e in entries if e.get("version") != CACHE_VERSION
            ),
        }

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        removed = 0
        if not self._dir.is_dir():
            return removed
        for path in self._dir.glob("*.jsonl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def default_verdict_cache() -> PersistentVerdictCache:
    """A cache bound to the *currently configured* directory.

    Constructed per call (cheap: one Path) so config/env changes made by
    tests and the CLI take effect immediately.
    """
    return PersistentVerdictCache()
