"""Tunable knobs for the V(D, n) fast path.

One module-level :class:`PerfConfig` governs every cache and the parallel
builder; experiments, the CLI (``--workers``), and the benchmarks mutate
it through :func:`configure` or scope changes with :func:`overridden`.
All caches default to on — the knobs exist so benchmarks can measure the
unoptimized baseline and so pathological workloads can opt out.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, fields

#: Environment override for the worker count (CI multi-core runners set
#: this so parallel benchmark rows and shard smokes run even when the
#: plan or config would autodetect conservatively).
FORCE_WORKERS_ENV = "REPRO_FORCE_WORKERS"


def forced_workers() -> int | None:
    """The ``REPRO_FORCE_WORKERS`` override, or ``None`` when unset.

    Non-integer and non-positive values are ignored rather than raised:
    the variable is a CI affordance, not a user-facing API.
    """
    raw = os.environ.get(FORCE_WORKERS_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value > 0 else None


@dataclass
class PerfConfig:
    """Switches and sizes for the performance subsystem.

    * ``layout_cache`` — reuse view-layout templates per
      ``(graph, ports, ids, radius)`` base instead of re-extracting and
      re-canonicalizing views for every labeled instance.
    * ``decision_memo`` — memoize ``decoder.decide`` per canonical view
      (sound for decoders that are pure functions of the view, which the
      LCP model requires).
    * ``family_cache`` — cache the graph-family enumerations of
      :mod:`repro.graphs.families` (yielded graphs are defensive copies).
    * ``canonical_cache`` — memoize :func:`repro.graphs.encoding.canonical_form`
      by labelled graph key.
    * ``workers`` — default worker count for the parallel
      neighborhood-graph builder; ``0`` or ``1`` means serial.
    * ``chunk_size`` — instances per parallel work unit (``None`` picks a
      chunking that preserves base-instance locality).
    * ``streaming`` — route the full Lemma 3.1 hiding sweeps
      (:func:`repro.neighborhood.hiding.hiding_verdict_up_to`) through
      the streaming engine: the colorability decision is fused into the
      graph build and exits the moment a witness exists.  Callers that
      need the *complete* ``V(D, n)`` (e.g. chromatic-number
      measurements) opt out per call.
    * ``warm_start`` — let consecutive streaming sweeps of the same LCP
      at growing ``n`` resume from the previous state instead of
      recoloring from scratch (anonymous schemes only; ``V(D, n-1)``
      embeds into ``V(D, n)``).
    * ``disk_cache`` — persist streaming sweep verdicts under
      ``.repro_cache/`` so repeated processes skip re-enumeration
      entirely (see :mod:`repro.perf.persist`).
    * ``disk_cache_dir`` — override the cache directory (default:
      ``$REPRO_CACHE_DIR`` or ``./.repro_cache``).
    * ``symmetry`` — the symmetry-reduction mode (``"auto"`` | ``"on"``
      | ``"off"``) plans resolve their ``symmetry`` field against.
      ``"off"`` selects the legacy edge-subset family enumerator and no
      orbit pruning; ``"auto"``/``"on"`` select orderly generation
      (byte-identical stream, each class constructed once) and — for
      ``"auto"`` only on anonymous schemes, for ``"on"`` always —
      automorphism-orbit pruning of bases and labelings with exact
      suppressed-count accounting (see :mod:`repro.symmetry`).
    * ``kernel_block_size`` — labelings per block of the vectorized
      batch kernel (:mod:`repro.kernel`).  Block boundaries are
      unobservable — the yielded stream and all accounting are
      block-size independent — so this is purely a memory/throughput
      trade.
    * ``sharding`` — the sharded-generation mode (``"auto"`` | ``"on"``
      | ``"off"``) plans resolve their ``sharding`` field against.
      Sharding splits the canonical-augmentation tree at
      ``shard_depth`` into independent subtree work units and drains
      them on a work-stealing process pool (see :mod:`repro.shard`);
      the merged emission stream and all accounting are byte-identical
      to the serial walk, so this knob never enters a cache key.
      ``"auto"`` engages it only when it can pay off (multiple
      effective workers, full sweeps, orderly generation active);
      ``"on"`` forces the sharded path even single-process (the
      deterministic test route); ``"off"`` disables it.
    * ``shard_depth`` — the prefix depth at which the augmentation tree
      is split; subtree roots are the level-``shard_depth`` generation
      entries.  Purely a granularity trade — never observable in any
      output stream.
    * ``shard_checkpoints`` — persist per-shard results under
      ``.repro_cache/shards/`` so a killed sweep restarts from its
      completed shards.
    * ``generation_kernel`` — the generation-side kernel mode
      (``"auto"`` | ``"on"`` | ``"off"``): whether the orderly
      generator and its emission labeling run the batched
      canonicalization searches of :mod:`repro.kernel.generate` instead
      of the scalar per-graph DFS.  Levels and emission streams are
      byte-identical either way, so this knob never enters a cache key;
      ``"auto"`` engages the kernel whenever numpy is importable,
      ``"on"`` asserts it (plans resolve it to an error when numpy is
      missing), ``"off"`` forces the scalar reference path.
    """

    layout_cache: bool = True
    layout_cache_size: int = 4096
    decision_memo: bool = True
    decision_memo_size: int = 65536
    family_cache: bool = True
    canonical_cache: bool = True
    canonical_cache_size: int = 65536
    workers: int = 0
    chunk_size: int | None = None
    streaming: bool = False
    warm_start: bool = True
    disk_cache: bool = False
    disk_cache_dir: str | None = None
    symmetry: str = "auto"
    kernel_block_size: int = 4096
    generation_kernel: str = "auto"
    sharding: str = "auto"
    shard_depth: int = 4
    shard_checkpoints: bool = True

    def apply(self, **kwargs) -> "PerfConfig":
        """Update fields in place (unknown names raise); returns self."""
        valid = {f.name for f in fields(PerfConfig)}
        for key, value in kwargs.items():
            if key not in valid:
                raise TypeError(f"unknown perf config field {key!r}")
            setattr(self, key, value)
        return self

    @contextmanager
    def overridden(self, **kwargs):
        """Scope field overrides to a ``with`` block — the preferred way
        for surfaces (runner, CLI, tests) to set knobs without leaking
        them into the rest of the process.  ``None`` values mean "leave
        this knob alone", so call sites can forward optional arguments
        unfiltered."""
        effective = {k: v for k, v in kwargs.items() if v is not None}
        saved = {key: getattr(self, key) for key in effective}
        self.apply(**effective)
        try:
            yield self
        finally:
            self.apply(**saved)


CONFIG = PerfConfig()


def configure(**kwargs) -> PerfConfig:
    """Update the global :data:`CONFIG` in place; returns it."""
    return CONFIG.apply(**kwargs)


@contextmanager
def overridden(**kwargs):
    """Temporarily override :data:`CONFIG` fields (tests and benchmarks)."""
    with CONFIG.overridden(**kwargs) as config:
        yield config
