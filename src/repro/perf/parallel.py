"""Process-pool parallel construction of the neighborhood graph.

The expensive part of :func:`repro.neighborhood.ngraph.build_neighborhood_graph`
— view extraction/relabeling plus decoder decisions, per labeled instance
— is embarrassingly parallel; only the incremental ``add_view``/``add_edge``
bookkeeping is order-sensitive.  The parallel builder therefore:

1. materializes the labeled-instance stream and splits it into
   **contiguous** chunks (the enumeration yields all labelings of one
   base consecutively, so contiguity preserves view-layout reuse inside
   each worker);
2. has each worker scan its chunk with its own layout cache and decision
   memo, returning per-instance ``(accepting (node, view) pairs, accepted
   edges)`` in the exact order the serial builder would visit them;
3. replays the chunks **in order** in the parent, so view indices, edge
   set, and witness assignment are byte-identical to the serial build.

Witness instances are taken from the parent's own list (workers only
report node names), so provenance points at the caller's objects.  LCPs
must be picklable to cross the process boundary; unpicklable ones fall
back to the serial builder (recorded in the stats).
"""

from __future__ import annotations

import os
import pickle
from collections import deque
from collections.abc import Iterable
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext

from ..obs.logs import get_logger
from ..obs.trace import NULL_TRACER, Tracer, worker_span
from .config import CONFIG
from .stats import GLOBAL_STATS, PerfStats

log = get_logger("perf.parallel")

#: Below this many instances the pool overhead cannot pay for itself.
_MIN_PARALLEL_INSTANCES = 8


class InstanceScanner:
    """Per-worker scan state: one layout cache, one decision memo, and
    the last-graph edge shortcut, shared across every instance a worker
    scans (chunk scans here, shard sweeps in :mod:`repro.shard.worker`).
    """

    __slots__ = ("lcp", "stats", "layout_cache", "memo", "_last_graph", "_last_edges")

    def __init__(self, lcp, stats: PerfStats) -> None:
        from .cache import DecisionMemo, ViewLayoutCache  # noqa: PLC0415

        self.lcp = lcp
        self.stats = stats
        self.layout_cache = (
            ViewLayoutCache(CONFIG.layout_cache_size) if CONFIG.layout_cache else None
        )
        self.memo = (
            DecisionMemo(lcp.decoder, CONFIG.decision_memo_size)
            if CONFIG.decision_memo
            else None
        )
        self._last_graph = None
        self._last_edges: list = []

    def scan(self, instance) -> tuple[list, list]:
        """``(accepting (node, view) pairs, accepted edges)`` for one
        labeled instance, in the serial builder's visit order."""
        views = _instance_views(self.lcp, instance, self.layout_cache, self.stats)
        if self.memo is not None:
            memo, stats = self.memo, self.stats
            votes = {v: memo.decide(view, stats=stats) for v, view in views.items()}
        else:
            decide = self.lcp.decoder.decide
            votes = {v: decide(view) for v, view in views.items()}
        accepting = [(v, views[v]) for v, accepted in votes.items() if accepted]
        if instance.graph is not self._last_graph:
            self._last_graph = instance.graph
            self._last_edges = instance.graph.edges
        edges = [
            (u, v) for u, v in self._last_edges if votes.get(u) and votes.get(v)
        ]
        return accepting, edges


def _chunked(items: list, chunk_size: int) -> list[list]:
    return [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]


def _pick_chunk_size(n_instances: int, workers: int) -> int:
    """Roughly 4 chunks per worker, but never tiny chunks.

    Larger chunks keep consecutive same-base instances together (layout
    reuse); more chunks smooth out load imbalance.
    """
    if CONFIG.chunk_size is not None:
        return max(1, CONFIG.chunk_size)
    target = max(1, n_instances // (workers * 4))
    return max(target, min(16, n_instances))


def _scan_chunk(payload: tuple) -> tuple[list, dict, list]:
    """Worker: decide every view of every instance in one chunk.

    Returns, per instance in chunk order, ``(accepting, edges)`` where
    *accepting* lists ``(node, view)`` in graph-node order and *edges*
    lists accepted edges in graph-edge order — the serial visit order.
    The third element is the worker's span records (plain dicts; empty
    unless the parent run is traced), which the parent tracer adopts
    into its own tree.
    """
    lcp, chunk, chunk_index, traced = payload
    stats = PerfStats()
    spans: list[dict] = []
    scanner = InstanceScanner(lcp, stats)
    results = []
    with worker_span(
        "worker:scan-chunk",
        spans if traced else None,
        worker_pid=os.getpid(),
        chunk_index=chunk_index,
        instances=len(chunk),
    ):
        for instance in chunk:
            results.append(scanner.scan(instance))
    return results, stats.as_dict(), spans


def _instance_views(lcp, instance, layout_cache, stats: PerfStats) -> dict:
    """Views of every node, through the layout cache when enabled."""
    from ..local.views import extract_all_views  # noqa: PLC0415

    include_ids = not lcp.anonymous
    if layout_cache is None:
        views = extract_all_views(instance, lcp.radius, include_ids=include_ids)
        stats.incr("views_extracted", len(views))
        return views
    return layout_cache.labeled_views(
        instance, lcp.radius, include_ids, stats=stats
    )


def build_neighborhood_graph_parallel(
    lcp,
    labeled_instances: Iterable,
    workers: int | None = None,
    chunk_size: int | None = None,
    stats: PerfStats | None = None,
    consumer=None,
    into=None,
    tracer: Tracer | None = None,
):
    """Parallel drop-in for :func:`build_neighborhood_graph`.

    Produces a :class:`~repro.neighborhood.ngraph.NeighborhoodGraph`
    identical to the serial builder's (views, indices, edges, witnesses)
    regardless of worker count or chunking.  Falls back to the serial
    path for tiny inputs, ``workers <= 1``, or unpicklable LCPs.

    Chunk results are *streamed*: chunks are submitted with a bounded
    in-flight window and replayed in submission order the moment each
    finishes, feeding *consumer* events exactly as the serial builder
    would.  When the consumer signals ``done`` (an early-exit witness),
    the remaining chunks are cancelled instead of scanned — the parallel
    path pays at most one window of extra decode work past the witness.
    """
    from ..neighborhood.ngraph import NeighborhoodGraph, build_neighborhood_graph  # noqa: PLC0415

    stats = stats or GLOBAL_STATS
    tracer = tracer if tracer is not None else NULL_TRACER
    if workers is None:
        workers = CONFIG.workers or (os.cpu_count() or 1)
    instances = list(labeled_instances)
    if workers <= 1 or len(instances) < _MIN_PARALLEL_INSTANCES:
        return build_neighborhood_graph(
            lcp, instances, stats=stats, consumer=consumer, into=into, tracer=tracer
        )
    try:
        pickle.dumps(lcp)
    except Exception:
        stats.incr("parallel_fallbacks")
        log.warning(
            "%s is not picklable; falling back to the serial builder",
            getattr(lcp, "name", type(lcp).__name__),
        )
        return build_neighborhood_graph(
            lcp, instances, stats=stats, consumer=consumer, into=into, tracer=tracer
        )

    size = chunk_size if chunk_size is not None else _pick_chunk_size(len(instances), workers)
    chunks = _chunked(instances, size)
    stats.incr("parallel_builds")
    stats.incr("parallel_chunks", len(chunks))

    ngraph = into if into is not None else NeighborhoodGraph(
        radius=lcp.radius, include_ids=not lcp.anonymous
    )
    stopped = False
    traced = tracer.active
    with tracer.span(
        "build:parallel", workers=workers, chunks=len(chunks), chunk_size=size
    ) as build_span:
        with stats.time_stage("parallel_scan"):
            from .pool import active_pool, pool_initializer, warm_snapshots  # noqa: PLC0415

            shared = active_pool(workers)
            if shared is not None:
                stats.incr("shared_pool_hits")
                pool_cm = nullcontext(shared)
            else:
                family_snapshot, table_snapshot = warm_snapshots()
                stats.incr("family_cache_preload_entries", len(family_snapshot))
                stats.incr(
                    "family_cache_preload_graphs",
                    sum(len(graphs) for graphs in family_snapshot.values()),
                )
                stats.incr("kernel_table_preload_entries", len(table_snapshot))
                pool_cm = ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=pool_initializer,
                    initargs=(family_snapshot, table_snapshot),
                )
            with pool_cm as pool:
                window = max(2, workers * 2)
                pending: deque = deque()
                for index, chunk in enumerate(chunks[:window]):
                    pending.append(
                        (pool.submit(_scan_chunk, (lcp, chunk, index, traced)), chunk)
                    )
                next_index = len(pending)
                replayed = 0
                while pending:
                    future, chunk = pending.popleft()
                    chunk_results, worker_stats, worker_spans = future.result()
                    stats.merge(worker_stats)
                    tracer.adopt(worker_spans, parent=build_span)
                    with stats.time_stage("parallel_merge"):
                        with tracer.span(
                            "chunk-replay", chunk_index=replayed
                        ) as replay_span:
                            stopped = _replay_chunk(
                                ngraph, chunk, chunk_results, stats, consumer
                            )
                            replay_span.set_attribute("early_exit", stopped)
                    replayed += 1
                    if stopped:
                        stats.incr("streaming_early_exits")
                        stats.incr("parallel_chunks_cancelled", len(pending))
                        log.debug(
                            "early exit in chunk %d; cancelling %d queued chunks",
                            replayed - 1,
                            len(pending),
                        )
                        for queued_future, _queued_chunk in pending:
                            queued_future.cancel()
                        break
                    if next_index < len(chunks):
                        pending.append(
                            (
                                pool.submit(
                                    _scan_chunk,
                                    (lcp, chunks[next_index], next_index, traced),
                                ),
                                chunks[next_index],
                            )
                        )
                        next_index += 1
        build_span.set_attributes(
            instances_scanned=ngraph.instances_scanned,
            views=ngraph.order,
            edges=ngraph.size,
            early_exit=stopped,
        )
    return ngraph


def _replay_chunk(
    ngraph, chunk, chunk_results, stats: PerfStats, consumer, deltas=None, account=None
) -> bool:
    """Replay one chunk's scan into the parent graph, in serial order.

    Returns True when the consumer signalled ``done`` mid-replay; the
    replay stops at that exact event, so the assembled graph matches the
    serial builder's early-exit prefix byte for byte.  *deltas* (one
    :meth:`SymmetryAccount.as_tuple`-format tuple per instance, from a
    shard worker) are folded into *account* immediately before their
    instance replays, so an early exit leaves the account exactly where
    the serial sweep's abandoned generator would have.
    """
    for index, (instance, (accepting, edges)) in enumerate(zip(chunk, chunk_results)):
        if deltas is not None and account is not None:
            account.add_delta(deltas[index])
        ngraph.instances_scanned += 1
        stats.incr("instances_scanned")
        indices = {}
        for v, view in accepting:
            idx, created = ngraph.add_view_tracked(view, instance, v)
            indices[v] = idx
            if created and consumer is not None:
                consumer.on_view(idx, view)
                if consumer.done:
                    return True
        for u, v in edges:
            created = ngraph.add_edge_tracked(indices[u], indices[v], instance, (u, v))
            if created and consumer is not None:
                consumer.on_edge(indices[u], indices[v])
                if consumer.done:
                    return True
    return False
