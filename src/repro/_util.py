"""Small internal helpers shared across the library."""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from typing import TypeVar

T = TypeVar("T")


def pairwise(items: Sequence[T]) -> Iterator[tuple[T, T]]:
    """Yield consecutive pairs ``(items[i], items[i+1])``."""
    for i in range(len(items) - 1):
        yield items[i], items[i + 1]


def argmin(items: Iterable[T], key) -> T:
    """Return the element of *items* minimizing *key* (first on ties)."""
    best = None
    best_key = None
    for item in items:
        k = key(item)
        if best_key is None or k < best_key:
            best, best_key = item, k
    if best_key is None:
        raise ValueError("argmin() of empty iterable")
    return best


def bits_needed(value: int) -> int:
    """Number of bits needed to write *value* in binary (at least 1)."""
    if value < 0:
        raise ValueError("bits_needed() requires a non-negative integer")
    return max(1, value.bit_length())


def normalize_edge(u: int, v: int) -> tuple[int, int]:
    """Return the canonical (sorted) form of an undirected edge."""
    return (u, v) if u <= v else (v, u)


def is_sorted(seq: Sequence[T]) -> bool:
    """True if *seq* is non-decreasing."""
    return all(a <= b for a, b in pairwise(seq))


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render a simple monospace table (used by reports and the CLI)."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
