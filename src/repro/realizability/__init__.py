"""Realizability of neighborhood-graph subgraphs (Section 5): view
compatibility, the G_bad merge of Lemma 5.1, walk surgery (Lemmas
5.4/5.5), and the identifier remapping of Lemma 5.2."""

from .compatibility import (
    identifiers_in,
    node_compatible_with,
    occurrences_of_identifier,
    views_compatible,
)
from .realize import (
    RealizationResult,
    realize_walk_component_wise,
    build_g_bad,
    candidates_from_witnesses,
    choose_realizing_views,
    realize_views,
)
from .surgery import ComposedWalk, compose_with_escape_walks, order_preserving_remap
from .walks import (
    debacktrack_odd_cycle,
    escape_walk,
    forgotten_node,
    is_closed,
    is_non_backtracking,
    is_valid_walk,
    lift_walk,
    non_backtracking_walk_between,
    walk_length,
)

__all__ = [
    "ComposedWalk",
    "RealizationResult",
    "build_g_bad",
    "candidates_from_witnesses",
    "choose_realizing_views",
    "compose_with_escape_walks",
    "debacktrack_odd_cycle",
    "escape_walk",
    "forgotten_node",
    "identifiers_in",
    "is_closed",
    "is_non_backtracking",
    "is_valid_walk",
    "lift_walk",
    "node_compatible_with",
    "non_backtracking_walk_between",
    "occurrences_of_identifier",
    "order_preserving_remap",
    "realize_views",
    "realize_walk_component_wise",
    "views_compatible",
    "walk_length",
]
