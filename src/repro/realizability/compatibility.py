"""View compatibility (Section 5.1, Fig. 7).

Let ``μ1``, ``μ2`` be radius-``r`` views with centers ``v1``, ``v2`` and
let ``u`` be a node of ``μ1``.  Then ``u`` is *compatible* with ``μ2`` if

1. ``u`` carries the identifier of ``μ2``'s center, and
2. for every node ``w1`` of ``μ1`` at distance < ``r`` from ``v1``, if
   ``μ2`` has a node ``w2`` with the same identifier at distance < ``r``
   from ``v2``, then ``w1`` and ``w2`` have identical radius-1 views
   (graph structure, ports, identifiers, and labels).

Unlike yes-instance-compatibility (Section 3), this relates views that
need not coexist in any instance — it is the local consistency predicate
that makes the ``G_bad`` merge of Lemma 5.1 well-defined.
"""

from __future__ import annotations

from ..errors import ViewError
from ..local.views import View


def _id_index(view: View) -> dict[int, int]:
    """Map identifier -> local node for an identified view."""
    if view.ids is None:
        raise ViewError("compatibility is defined on identified views")
    return {ident: local for local, ident in enumerate(view.ids)}


def node_compatible_with(view1: View, u_local: int, view2: View) -> bool:
    """Whether node *u_local* of *view1* is compatible with *view2*."""
    ids1 = view1.ids
    ids2 = view2.ids
    if ids1 is None or ids2 is None:
        raise ViewError("compatibility is defined on identified views")
    if ids1[u_local] != ids2[0]:
        return False  # condition 1: u carries μ2's center identifier
    index2 = _id_index(view2)
    r = view1.radius
    for w1 in view1.nodes():
        if view1.dist[w1] >= r:
            continue
        w2 = index2.get(ids1[w1])
        if w2 is None or view2.dist[w2] >= r:
            continue
        if view1.subview_radius1(w1) != view2.subview_radius1(w2):
            return False
    return True


def views_compatible(view1: View, view2: View, u_local: int) -> bool:
    """``μ1`` is compatible with ``μ2`` with respect to ``u`` (paper's
    phrasing for :func:`node_compatible_with`)."""
    return node_compatible_with(view1, u_local, view2)


def occurrences_of_identifier(view: View, identifier: int) -> list[int]:
    """Local nodes of *view* carrying *identifier* (0 or 1 of them)."""
    if view.ids is None:
        raise ViewError("identified views required")
    return [local for local, ident in enumerate(view.ids) if ident == identifier]


def identifiers_in(view: View) -> set[int]:
    """All identifiers appearing in *view*."""
    if view.ids is None:
        raise ViewError("identified views required")
    return set(view.ids)
