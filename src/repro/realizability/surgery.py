"""Composition machinery for Theorem 1.5 (Lemmas 5.2 and 5.4).

Two tools:

* :func:`order_preserving_remap` — Lemma 5.2's identifier replacement:
  instance ``slot`` out of ``slots`` gets identifiers
  ``(id - 1) * slots + slot + 1``, so identifiers from different slots
  never collide while every *relative order* is preserved — an
  order-invariant decoder cannot tell the difference (machine-checked in
  the test suite).

* :func:`compose_with_escape_walks` — Lemma 5.4's walk composition: an
  odd closed walk of views in ``V(D, n)`` is stretched by inserting, in
  front of every edge ``e = (μ1, μ2)``, the even closed escape walk
  ``W_e`` of the witness instance ``G_e`` (Fig. 8).  The composed object
  keeps per-segment provenance, which is exactly the "component" structure
  that component-wise realizability talks about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..certification.lcp import LCP
from ..errors import RealizabilityError
from ..graphs.graph import Node
from ..local.identifiers import IdentifierAssignment
from ..local.instance import Instance
from ..local.views import View, extract_view
from .walks import escape_walk, is_non_backtracking, lift_walk


def order_preserving_remap(instance: Instance, slot: int, slots: int) -> Instance:
    """Lemma 5.2's block remap: disjoint identifier ranges, same order.

    ``id -> (id - 1) * slots + slot + 1`` with ``0 <= slot < slots``.
    The identifier bound becomes ``slots * N``.
    """
    if not 0 <= slot < slots:
        raise RealizabilityError(f"slot {slot} outside [0, {slots})")
    old = instance.ids.as_dict()
    new_ids = IdentifierAssignment(
        {v: (ident - 1) * slots + slot + 1 for v, ident in old.items()}
    )
    return instance.with_ids(new_ids, id_bound=slots * instance.id_bound)


@dataclass
class ComposedWalk:
    """An odd closed view walk stitched from per-instance segments.

    Each segment is a node walk inside one witness instance; consecutive
    segments meet at a shared view (junction).  ``views()`` flattens to
    the walk in ``V(D, n)``.
    """

    radius: int
    include_ids: bool
    segments: list[tuple[Instance, list[Node]]] = field(default_factory=list)

    def views(self) -> list[View]:
        out: list[View] = []
        for index, (instance, node_walk) in enumerate(self.segments):
            lifted = lift_walk(instance, node_walk, self.radius, include_ids=self.include_ids)
            if out:
                if out[-1] != lifted[0]:
                    raise RealizabilityError(
                        f"segment {index} does not start at the previous junction view"
                    )
                out.extend(lifted[1:])
            else:
                out.extend(lifted)
        return out

    def length(self) -> int:
        """Total number of edges of the composed walk."""
        return sum(len(walk) - 1 for _instance, walk in self.segments)

    def is_closed(self) -> bool:
        views = self.views()
        return len(views) >= 2 and views[0] == views[-1]

    def node_walks_non_backtracking(self) -> bool:
        return all(
            is_non_backtracking(walk, closed=False) for _inst, walk in self.segments
        )


def compose_with_escape_walks(lcp: LCP, ngraph, cycle_views: list[View]) -> ComposedWalk:
    """Insert the escape walk ``L_e`` before every edge of an odd cycle.

    *cycle_views* is a closed walk ``[μ0, ..., μk = μ0]`` in the
    neighborhood graph *ngraph*; every edge must have provenance there.
    Each edge ``(μi, μi+1)`` is realized in its witness instance as an
    edge ``(u, v)``; the inserted ``L_e`` is the even closed walk of
    Lemma 5.4 starting and ending at ``u``, followed by the edge itself.
    The composed walk is closed and of the same (odd) parity.
    """
    include_ids = ngraph.include_ids
    composed = ComposedWalk(radius=lcp.radius, include_ids=include_ids)
    for i in range(len(cycle_views) - 1):
        mu1, mu2 = cycle_views[i], cycle_views[i + 1]
        idx1, idx2 = ngraph.index[mu1], ngraph.index[mu2]
        key = (idx1, idx2) if idx1 <= idx2 else (idx2, idx1)
        witness = ngraph.edge_witness.get(key)
        if witness is None:
            raise RealizabilityError(f"edge {key} has no witness instance")
        instance, (a, b) = witness
        view_a = extract_view(instance, a, lcp.radius, include_ids=include_ids)
        if view_a == mu1:
            u, v = a, b
        else:
            u, v = b, a
            view_b = extract_view(instance, b, lcp.radius, include_ids=include_ids)
            if view_b != mu1:
                raise RealizabilityError(
                    f"witness edge {key}: neither endpoint has the expected view"
                )
        loop = escape_walk(instance, u, v, lcp.radius)
        composed.segments.append((instance, loop + [v]))
    views = composed.views()
    if views[0] != views[-1]:
        raise RealizabilityError("composed walk is not closed")
    if composed.length() % 2 == 0:
        raise RealizabilityError("composed walk lost its odd parity")
    return composed
