"""Realizing subgraphs of ``V(D, n)`` as concrete instances (Lemma 5.1).

A subgraph ``H`` of the neighborhood graph is *realizable* when, for every
identifier ``i`` appearing in ``H``, there is one view ``μ_i`` (centered
at a node with identifier ``i``) with which every occurrence of ``i``
across the views of ``H`` is compatible (Section 5.1).  Lemma 5.1 then
merges the ``μ_i`` into a single instance ``G_bad`` by identifying nodes
with equal identifiers; all of ``H``'s center nodes are accepted by the
decoder inside ``G_bad``.

The executable pipeline:

1. :func:`choose_realizing_views` — pick ``μ_i`` per identifier from a
   candidate pool (by default harvested from the provenance instances of
   the neighborhood graph) and check compatibility of every occurrence;
2. :func:`build_g_bad` — perform the merge, collecting any inconsistency
   (conflicting ports, labels, or invalid port ranges) as explicit
   failures instead of silently producing garbage;
3. :func:`realize_views` — the end-to-end wrapper, which also verifies
   the realization by re-extracting each ``μ_i`` from ``G_bad`` and
   running the decoder on it.

If ``H`` is an odd closed walk, a verified realization is precisely a
strong-soundness counterexample — the engine behind the Theorem 1.2
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..certification.lcp import LCP
from ..graphs.graph import Graph
from ..local.identifiers import IdentifierAssignment
from ..local.instance import Instance
from ..local.labeling import Labeling
from ..local.ports import PortAssignment
from ..local.views import View, extract_view
from ..errors import PortAssignmentError, RealizabilityError, ViewError
from .compatibility import node_compatible_with, occurrences_of_identifier


@dataclass
class RealizationResult:
    """Outcome of a Lemma 5.1 merge."""

    chosen: dict[int, View]
    instance: Instance | None
    failures: list[str] = field(default_factory=list)
    #: identifiers of H's centers whose re-extracted G_bad views match μ_i
    verified_centers: list[int] = field(default_factory=list)
    #: per-center decoder verdicts inside G_bad
    accepted_centers: dict[int, bool] = field(default_factory=dict)

    @property
    def realized(self) -> bool:
        return self.instance is not None and not self.failures

    @property
    def all_centers_accepted(self) -> bool:
        return bool(self.accepted_centers) and all(self.accepted_centers.values())


def choose_realizing_views(
    views: list[View], candidates: dict[int, list[View]]
) -> tuple[dict[int, View], list[str]]:
    """Pick a compatible ``μ_i`` per identifier, or report why not.

    *views* is the node set of ``H`` (each an identified view);
    *candidates* maps each identifier to views centered at it.  A chosen
    ``μ_i`` must be compatible with every occurrence of ``i`` in ``H``.
    """
    failures: list[str] = []
    identifiers: set[int] = set()
    for view in views:
        if view.ids is None:
            raise ViewError("realization requires identified views")
        identifiers |= set(view.ids)

    chosen: dict[int, View] = {}
    for ident in sorted(identifiers):
        options = candidates.get(ident, [])
        winner = None
        for option in options:
            if option.ids is None or option.ids[0] != ident:
                continue
            ok = True
            for view in views:
                for u_local in occurrences_of_identifier(view, ident):
                    if not node_compatible_with(view, u_local, option):
                        ok = False
                        break
                if not ok:
                    break
            if ok:
                winner = option
                break
        if winner is None:
            failures.append(
                f"identifier {ident}: no candidate view is compatible with all "
                f"of its {sum(len(occurrences_of_identifier(v, ident)) for v in views)} occurrences"
            )
        else:
            chosen[ident] = winner
    return chosen, failures


def build_g_bad(
    chosen: dict[int, View], id_bound: int
) -> tuple[Instance | None, list[str]]:
    """Merge the chosen views into ``G_bad`` (Lemma 5.1).

    Nodes are identifiers; an edge ``{i, j}`` exists iff some chosen view
    contains adjacent nodes with identifiers ``i`` and ``j``.  Ports and
    labels are transported from the views, with conflicts reported.
    """
    failures: list[str] = []
    graph = Graph(nodes=sorted(chosen))
    ports: dict[int, dict[int, int]] = {i: {} for i in chosen}
    labels: dict[int, object] = {}

    for ident, view in chosen.items():
        assert view.ids is not None
        labels.setdefault(ident, view.center_label)
        if labels[ident] != view.center_label:
            failures.append(f"identifier {ident}: conflicting center labels")
        for a, b in view.edges:
            ia, ib = view.ids[a], view.ids[b]
            graph.add_node(ia)
            graph.add_node(ib)
            graph.add_edge(ia, ib)
            for x, y in ((a, b), (b, a)):
                ix, iy = view.ids[x], view.ids[y]
                port = view.port(x, y)
                existing = ports.setdefault(ix, {}).get(iy)
                if existing is None:
                    ports[ix][iy] = port
                elif existing != port:
                    failures.append(
                        f"edge ({ix}, {iy}): conflicting ports {existing} vs {port}"
                    )
        for local in view.nodes():
            ident_l = view.ids[local]
            if ident_l in chosen and local != 0:
                # Label agreement between μ_i's interior and μ_j's center.
                other = chosen[ident_l].center_label
                if view.labels[local] != other:
                    failures.append(
                        f"identifier {ident_l}: label disagrees between "
                        f"μ_{ident} and its own view μ_{ident_l}"
                    )

    # Nodes seen only at view boundaries have no chosen view; they still
    # exist in G_bad with whatever structure was witnessed.
    for i in graph.nodes:
        ports.setdefault(i, {})
        labels.setdefault(i, None)

    if failures:
        return None, failures

    try:
        port_assignment = PortAssignment(ports)
        port_assignment.validate(graph)
    except PortAssignmentError as error:
        return None, [f"merged ports invalid: {error}"]

    ids = IdentifierAssignment({i: i for i in graph.nodes})
    instance = Instance(
        graph=graph,
        ports=port_assignment,
        ids=ids,
        id_bound=max(id_bound, max(graph.nodes)),
        labeling=Labeling(labels),
    )
    return instance, []


def realize_views(
    lcp: LCP,
    views: list[View],
    candidates: dict[int, list[View]],
    id_bound: int,
) -> RealizationResult:
    """Run the full Lemma 5.1 pipeline and verify the outcome."""
    chosen, failures = choose_realizing_views(views, candidates)
    result = RealizationResult(chosen=chosen, instance=None, failures=failures)
    if failures:
        return result
    instance, merge_failures = build_g_bad(chosen, id_bound)
    result.failures.extend(merge_failures)
    result.instance = instance
    if instance is None:
        return result

    center_ids = [view.ids[0] for view in views if view.ids is not None]
    for ident in sorted(set(center_ids)):
        extracted = extract_view(instance, ident, lcp.radius, include_ids=True)
        if extracted == chosen[ident]:
            result.verified_centers.append(ident)
        result.accepted_centers[ident] = lcp.decoder.decide(extracted)
    return result


def candidates_from_witnesses(
    ngraph_views: list[View],
    witnesses: list[tuple[Instance, object]],
    radius: int,
) -> dict[int, list[View]]:
    """Harvest candidate ``μ_i`` views from provenance instances.

    For every identifier appearing in the target views, collect the true
    view of the node carrying that identifier in each witness instance.
    """
    identifiers: set[int] = set()
    for view in ngraph_views:
        if view.ids is not None:
            identifiers |= set(view.ids)
    pool: dict[int, list[View]] = {ident: [] for ident in identifiers}
    seen_instances = []
    for instance, _node in witnesses:
        if any(existing is instance for existing in seen_instances):
            continue
        seen_instances.append(instance)
        for v in instance.graph.nodes:
            ident = instance.ids.id_of(v)
            if ident in pool:
                candidate = extract_view(instance, v, radius, include_ids=True)
                if all(candidate != existing for existing in pool[ident]):
                    pool[ident].append(candidate)
    return pool


def _walk_components(
    walk_views: list[View], identifier: int
) -> list[list[int]]:
    """Components of ``S(identifier)`` inside a closed walk of views.

    Positions of the walk (indices into *walk_views*, last position
    dropped if it repeats the first) whose views contain *identifier*,
    grouped by connectivity along the walk (consecutive positions are
    adjacent; the wrap-around edge counts).
    """
    positions = len(walk_views) - 1 if walk_views and walk_views[0] == walk_views[-1] else len(walk_views)
    holders = [
        p for p in range(positions)
        if walk_views[p].ids is not None and identifier in walk_views[p].ids
    ]
    if not holders:
        return []
    holder_set = set(holders)
    parent = {p: p for p in holders}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for p in holders:
        q = (p + 1) % positions
        if q in holder_set:
            parent[find(p)] = find(q)
    # Views can repeat along the walk; identical views are the same node
    # of V(D, n), so their positions merge too.
    by_view: dict[View, int] = {}
    for p in holders:
        view = walk_views[p]
        if view in by_view:
            parent[find(p)] = find(by_view[view])
        else:
            by_view[view] = p
    groups: dict[int, list[int]] = {}
    for p in holders:
        groups.setdefault(find(p), []).append(p)
    return [sorted(g) for g in sorted(groups.values())]


def realize_walk_component_wise(
    lcp: LCP,
    composed,
    id_bound: int,
) -> RealizationResult:
    """Lemmas 5.2 + 5.3 executably: realize a composed closed walk.

    *composed* is a :class:`~repro.realizability.surgery.ComposedWalk`
    over **identified** views (an order-invariant or id-oblivious decoder
    is required for the identifier replacement to be sound — exactly the
    hypothesis of Lemma 5.2).

    Pipeline: split each identifier's occurrences into walk components;
    give every component a fresh identifier from its own Lemma 5.2 block
    (order-preserving: component ``c`` of identifier ``i`` becomes
    ``(i - 1) * slots + c``); remap the walk views and the per-component
    realizing candidates; merge everything with :func:`build_g_bad`; and
    finally verify that the walk's center identifiers trace a closed walk
    of decoder-accepted nodes in the merged instance, of the same parity.
    """
    walk_views = composed.views()
    if not walk_views or walk_views[0] != walk_views[-1]:
        raise RealizabilityError("component-wise realization expects a closed walk")
    identifiers: set[int] = set()
    for view in walk_views:
        if view.ids is None:
            raise RealizabilityError("identified views required")
        identifiers |= set(view.ids)

    components: dict[int, list[list[int]]] = {
        i: _walk_components(walk_views, i) for i in sorted(identifiers)
    }
    slots = max((len(cs) for cs in components.values()), default=1)

    def fresh_id(identifier: int, comp_index: int) -> int:
        return (identifier - 1) * slots + comp_index + 1

    positions = len(walk_views) - 1
    # Position -> component index, per identifier; positions outside S(i)
    # inherit the nearest holder's component (cyclic walk distance), so
    # the remap is total and the Lemma 5.2 blocks never collide.
    comp_index_of: dict[int, dict[int, int]] = {}
    for identifier, comps in components.items():
        table: dict[int, int] = {}
        for comp_index, comp in enumerate(comps):
            for p in comp:
                table[p] = comp_index
        comp_index_of[identifier] = table

    def comp_at(identifier: int, p: int) -> int:
        table = comp_index_of.get(identifier)
        if not table:
            return 0
        if p in table:
            return table[p]
        holder = min(
            table,
            key=lambda q: min((q - p) % positions, (p - q) % positions),
        )
        return table[holder]

    def remap_for(p: int) -> dict[int, int]:
        return {i: fresh_id(i, comp_at(i, p)) for i in identifiers}

    remaps: list[dict[int, int]] = [remap_for(p) for p in range(positions)]

    def total_remap(view: View, p: int) -> View:
        mapping = dict(remaps[p])
        for ident in view.ids or ():
            if ident not in mapping:
                mapping[ident] = fresh_id(ident, 0)
        return view.with_relabeled_ids(mapping)

    remapped_walk = [total_remap(walk_views[p], p) for p in range(positions)]

    # Candidates per fresh identifier: the true views of the original
    # identifier's node in the provenance instances of the component.
    candidates: dict[int, list[View]] = {}
    segment_instances = [instance for instance, _walk in composed.segments]
    position_instance: list[Instance] = []
    cursor = 0
    for instance, node_walk in composed.segments:
        for _ in range(len(node_walk) - 1):
            position_instance.append(instance)
            cursor += 1
    for identifier, comps in components.items():
        for comp_index, comp in enumerate(comps):
            new_id = fresh_id(identifier, comp_index)
            pool: list[View] = []
            seen_instances: list[Instance] = []
            for p in comp:
                instance = position_instance[p % len(position_instance)]
                if any(existing is instance for existing in seen_instances):
                    continue
                seen_instances.append(instance)
                try:
                    node = instance.ids.node_of(identifier)
                except Exception:
                    continue
                candidate = extract_view(instance, node, lcp.radius, include_ids=True)
                pool.append(total_remap(candidate, p))
            candidates[new_id] = pool

    chosen, failures = choose_realizing_views(remapped_walk, candidates)
    result = RealizationResult(chosen=chosen, instance=None, failures=failures)
    if failures:
        return result
    instance, merge_failures = build_g_bad(chosen, id_bound=id_bound * slots)
    result.failures.extend(merge_failures)
    result.instance = instance
    if instance is None:
        return result

    # Verification: the remapped center identifiers trace a closed walk of
    # accepted nodes in G_bad with the original (odd) parity.
    centers = [view.ids[0] for view in remapped_walk]
    graph = instance.graph
    for a, b in zip(centers, centers[1:] + centers[:1]):
        if not graph.has_edge(a, b):
            result.failures.append(f"walk edge ({a}, {b}) missing from G_bad")
            return result
    for ident in sorted(set(centers)):
        extracted = extract_view(instance, ident, lcp.radius, include_ids=True)
        result.accepted_centers[ident] = lcp.decoder.decide(extracted)
        if ident in chosen and extracted == chosen[ident]:
            result.verified_centers.append(ident)
    return result
