"""Walk machinery for the lower bound (Section 5.2, Fig. 8).

Closed walks in ``V(D, n)`` are manipulated through their *node-walk*
preimages in concrete instances:

* :func:`lift_walk` — turn a node walk of an instance into a view walk;
* :func:`is_non_backtracking` — the paper's condition on consecutive
  identifiers (predecessor and successor centers differ);
* :func:`escape_walk` — the closed walk ``W_e`` of Lemma 5.4: take the
  edge ``u → v``, follow an r-forgetful escape path away from ``v``,
  continue (non-backtracking) to a node whose ``N^r`` is disjoint from
  both endpoints' views, and walk back to ``u``; the result is an even
  closed walk that "forgets" the starting edge;
* :func:`debacktrack_odd_cycle` — Lemma 5.5's surgery: replace a
  backtracking step by a detour around a second cycle, preserving odd
  parity.
"""

from __future__ import annotations

from collections import deque

from ..errors import GraphError
from ..graphs.forgetful import find_escape_path
from ..graphs.graph import Graph, Node
from ..graphs.traversal import ball, bfs_distances, shortest_path
from ..local.instance import Instance
from ..local.views import View, extract_view


def lift_walk(
    instance: Instance, node_walk: list[Node], radius: int, include_ids: bool = True
) -> list[View]:
    """Lift a node walk to the corresponding walk of views."""
    views = {}
    out = []
    for v in node_walk:
        if v not in views:
            views[v] = extract_view(instance, v, radius, include_ids=include_ids)
        out.append(views[v])
    return out


def is_closed(node_walk: list[Node]) -> bool:
    return len(node_walk) >= 2 and node_walk[0] == node_walk[-1]


def walk_length(node_walk: list[Node]) -> int:
    """Number of edges of the walk."""
    return len(node_walk) - 1


def is_valid_walk(graph: Graph, node_walk: list[Node]) -> bool:
    """Every consecutive pair must be an edge."""
    return all(
        graph.has_edge(node_walk[i], node_walk[i + 1])
        for i in range(len(node_walk) - 1)
    )


def is_non_backtracking(node_walk: list[Node], closed: bool | None = None) -> bool:
    """No step immediately undoes the previous one.

    For closed walks the wrap-around triples are included (the paper's
    condition quantifies over every view of the walk).
    """
    if closed is None:
        closed = is_closed(node_walk)
    steps = list(node_walk)
    if closed:
        # For wrap-around triples, append the second node again:
        # ... x, w0=wk, w1 must satisfy x != w1.
        steps = steps + [node_walk[1]]
    for i in range(len(steps) - 2):
        if steps[i] == steps[i + 2]:
            return False
    return True


def non_backtracking_walk_between(
    graph: Graph, start: Node, target: Node, forbidden_first: Node | None = None
) -> list[Node]:
    """A shortest non-backtracking walk from *start* to *target*.

    BFS over directed states ``(previous, current)``; requires minimum
    degree 2 along the way (guaranteed in the Lemma 5.4 setting).
    ``forbidden_first`` excludes one first step.
    """
    if start == target and forbidden_first is None:
        return [start]
    initial = [
        (start, w)
        for w in sorted(graph.neighbors(start), key=repr)
        if w != forbidden_first
    ]
    parents: dict[tuple[Node, Node], tuple[Node, Node] | None] = {
        state: None for state in initial
    }
    queue = deque(initial)
    goal = None
    while queue:
        state = queue.popleft()
        prev, current = state
        if current == target:
            goal = state
            break
        for nxt in sorted(graph.neighbors(current), key=repr):
            if nxt == prev:
                continue
            nxt_state = (current, nxt)
            if nxt_state not in parents:
                parents[nxt_state] = state
                queue.append(nxt_state)
    if goal is None:
        raise GraphError(
            f"no non-backtracking walk from {start!r} to {target!r}"
        )
    walk = [goal[1]]
    cursor: tuple[Node, Node] | None = goal
    while cursor is not None:
        walk.append(cursor[0])
        cursor = parents[cursor]
    walk.reverse()
    return walk


def forgotten_node(graph: Graph, u: Node, v: Node, radius: int) -> Node | None:
    """A node whose ``N^radius`` avoids both ``N^radius(u)`` and
    ``N^radius(v)`` — the ``v_{μ'}`` of Lemma 5.4 (exists whenever the
    diameter is large enough)."""
    blocked = ball(graph, u, 2 * radius) | ball(graph, v, 2 * radius)
    for candidate in sorted(graph.nodes, key=repr):
        if candidate not in blocked:
            return candidate
    return None


def escape_walk(instance: Instance, u: Node, v: Node, radius: int) -> list[Node]:
    """The closed walk ``W_e`` of Lemma 5.4 for the edge ``u → v``.

    Steps (paper, Fig. 8): start at ``u``; take the edge to ``v``; follow
    an escape path ``P`` away from ``v`` (r-forgetfulness); continue
    non-backtracking to the forgotten node ``v_{μ'}``; walk back to ``u``
    non-backtracking, closing the walk.  The result is validated to be a
    closed walk of even length (it lives in a bipartite yes-instance).
    """
    graph = instance.graph
    if not graph.has_edge(u, v):
        raise GraphError(f"({u!r}, {v!r}) is not an edge")
    escape = find_escape_path(graph, v, u, radius)
    if escape is None:
        raise GraphError(
            f"no escape path for ({v!r}, {u!r}); instance is not {radius}-forgetful"
        )
    hidden = forgotten_node(graph, u, v, radius)
    if hidden is None:
        raise GraphError("no node is far enough from both endpoints (diameter too small)")

    walk: list[Node] = [u, v]
    walk.extend(escape[1:])
    # Continue to the forgotten node without stepping back onto the
    # escape path's penultimate node.
    tail = non_backtracking_walk_between(
        graph, walk[-1], hidden, forbidden_first=walk[-2]
    )
    walk.extend(tail[1:])
    back = non_backtracking_walk_between(graph, walk[-1], u, forbidden_first=walk[-2])
    walk.extend(back[1:])
    if not is_valid_walk(graph, walk) or not is_closed(walk):
        raise GraphError("escape walk construction produced an invalid walk")
    if walk_length(walk) % 2 != 0:
        raise GraphError("escape walk is odd — the instance is not bipartite")
    return walk


def debacktrack_odd_cycle(instance: Instance, cycle: list[Node]) -> list[Node]:
    """Lemma 5.5's surgery on a closed walk with backtracking steps.

    Wherever the walk enters and leaves a node ``v`` through the same
    neighbor ``x`` (``... x, v, x ...``), the step arriving at ``v`` is
    replaced by the paper's detour: a minimal path ``P`` from ``v`` to a
    cycle ``C`` avoiding ``x``, once around ``C``, and back along ``P`` —
    so ``v`` is re-entered from ``P``'s first node instead of from ``x``.
    ``C`` is even (the source instance is bipartite), hence the inserted
    length ``2|P| + |C|`` is even and the walk's parity is preserved.
    Requires a second cycle in the instance, exactly the hypothesis of
    Section 5.2.
    """
    graph = instance.graph
    if not is_closed(cycle):
        raise GraphError("debacktrack_odd_cycle expects a closed walk")
    walk = list(cycle)
    guard = 0
    while True:
        index = _find_backtrack(walk)
        if index is None:
            return walk
        guard += 1
        if guard > 10 * len(cycle) + 40:
            raise GraphError("surgery did not converge; graph may lack a second cycle")
        walk = _surgery(graph, walk, index)


def _find_backtrack(walk: list[Node]) -> int | None:
    """Index ``i`` (1 <= i <= len-2) of a node entered and left via the
    same neighbor, rotating the closed walk first if the only offender
    straddles the wrap-around point."""
    for i in range(1, len(walk) - 1):
        if walk[i - 1] == walk[i + 1]:
            return i
    # Wrap-around: pred of walk[0] is walk[-2], succ is walk[1].
    if len(walk) >= 3 and walk[-2] == walk[1]:
        # Rotate by one so the offender becomes interior, then re-find
        # (one rotation suffices: the offending triple lands at an
        # interior index of the rotated walk).
        walk[:] = walk[1:] + [walk[1]]
        return _find_backtrack(walk)
    return None


def _surgery(graph: Graph, walk: list[Node], index: int) -> list[Node]:
    """Replace the backtracking double-step around ``walk[index]``."""
    x = walk[index - 1]
    v = walk[index]
    cycle = _even_cycle_avoiding(graph, x, near=v)
    # Minimal path from v to the cycle, inside G - x.
    reduced = graph.copy()
    reduced.remove_node(x)
    if v not in reduced:
        raise GraphError("backtrack pivot equals the avoided node")
    dist = bfs_distances(reduced, v)
    on_cycle = [c for c in cycle[:-1] if c in dist]
    if not on_cycle:
        raise GraphError("no path from the pivot to a second cycle avoiding the seam")
    u = min(on_cycle, key=lambda c: (dist[c], repr(c)))
    path = shortest_path(reduced, v, u)
    # Orient the cycle to start (and end) at u.
    k = cycle[:-1].index(u)
    around = cycle[:-1][k:] + cycle[:-1][:k] + [u]
    detour = path + around[1:] + list(reversed(path))[1:]
    # detour = v ... u (around C) u ... v
    return walk[:index] + detour + walk[index + 1 :]


def _even_cycle_avoiding(graph: Graph, banned: Node, near: Node) -> list[Node]:
    """A (necessarily even, in bipartite instances) cycle avoiding the
    node *banned*, preferring cycles reachable from *near*.

    Found via a BFS tree of ``G - banned`` plus one non-tree edge.
    """
    reduced = graph.copy()
    if banned in reduced:
        reduced.remove_node(banned)
    best: list[Node] | None = None
    dist_from_near = bfs_distances(reduced, near) if near in reduced else {}
    parent: dict[Node, Node | None] = {}
    depth: dict[Node, int] = {}
    for root in sorted(reduced.nodes, key=lambda n: (dist_from_near.get(n, 10**9), repr(n))):
        if root in depth:
            continue
        parent[root] = None
        depth[root] = 0
        queue = deque([root])
        while queue:
            a = queue.popleft()
            for b in sorted(reduced.neighbors(a), key=repr):
                if b not in depth:
                    depth[b] = depth[a] + 1
                    parent[b] = a
                    queue.append(b)
                elif parent[a] != b and depth[b] <= depth[a]:
                    cycle = _tree_cycle(parent, a, b)
                    if best is None or len(cycle) < len(best):
                        best = cycle
    if best is None:
        raise GraphError(f"no cycle avoids node {banned!r}")
    return best


def _tree_cycle(parent: dict[Node, Node | None], a: Node, b: Node) -> list[Node]:
    """Close the tree paths of ``a`` and ``b`` with the edge ``{a, b}``."""
    up_a = [a]
    while parent[up_a[-1]] is not None:
        up_a.append(parent[up_a[-1]])
    up_b = [b]
    while parent[up_b[-1]] is not None:
        up_b.append(parent[up_b[-1]])
    set_b = {n: i for i, n in enumerate(up_b)}
    meet_index = next(i for i, n in enumerate(up_a) if n in set_b)
    meet = up_a[meet_index]
    first = up_a[: meet_index + 1]
    second = up_b[: set_b[meet] + 1]
    return first + second[-2::-1] + [a]
