"""Command-line interface: ``repro`` / ``python -m repro``.

Subcommands
-----------

``repro list``
    List every registered experiment with its paper reference.
``repro run <exp_id> [...]``
    Run one or more experiments (or ``all``) and print their reports.
``repro schemes``
    Show the LCP scheme catalog with paper references and size claims.
``repro certify <scheme> <graph-spec>``
    Round-trip a scheme on a generated graph, e.g.
    ``repro certify degree-one path:8`` or
    ``repro certify watermelon melon:2,3,3``.
``repro views <scheme> <graph-spec>``
    Print every node's certified view and its verdict.
``repro hiding <scheme> --n N``
    Decide hiding via the streaming early-exit engine (or
    ``--materialized`` for the classic full-build pipeline).  The scheme
    may equivalently be given as ``--scheme``; ``--trace`` prints the
    run's span tree, ``--trace-out FILE`` writes a full run report, and
    ``--profile`` prints the span self-time table plus a
    flamegraph-compatible folded-stack file.
``repro frontier run|show ...``
    Sweep a campaign over the (scheme, family, n, k, r, alphabet)
    parameter space and report where the hiding verdict flips; ``show``
    validates and renders a stored frontier report.  On a terminal the
    sweep shows a live single-line progress display with rate and ETA
    (disable with ``REPRO_NO_PROGRESS=1``); ``--events-out FILE``
    captures the raw progress event stream as JSONL.
``repro report show|diff|validate|list|profile ...``
    Inspect, compare, or schema-check run reports under ``.repro_runs/``
    (``validate`` accepts frontier reports too, dispatching on schema);
    ``list`` enumerates stored reports newest first, ``profile`` renders
    the span self-time breakdown of one report.
``repro bench check ...``
    Compare fresh ``BENCH_*.json`` rows against the recorded timing
    history and exit nonzero on confirmed regressions.
``repro cache stats|clear``
    Inspect or empty the persistent sweep cache under ``.repro_cache/``.

The top-level ``--log-level`` flag configures the ``repro.*`` stdlib
logger hierarchy (see :mod:`repro.obs.logs`).
"""

from __future__ import annotations

import argparse
import sys

from ._util import format_table
from .core.registry import PAPER_REFERENCES, PAPER_SIZE_CLAIMS, make_lcp, scheme_names
from .graphs import (
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
    theta_graph,
    watermelon_graph,
)
from .local.instance import Instance


def parse_graph_spec(spec: str):
    """Parse ``kind:args`` graph specifications used by ``certify``."""
    kind, _, args = spec.partition(":")
    params = [int(x) for x in args.split(",") if x] if args else []
    if kind == "path":
        return path_graph(*params)
    if kind == "cycle":
        return cycle_graph(*params)
    if kind == "star":
        return star_graph(*params)
    if kind == "grid":
        return grid_graph(*params)
    if kind == "theta":
        return theta_graph(*params)
    if kind == "melon":
        return watermelon_graph(params)
    raise SystemExit(
        f"unknown graph spec {spec!r}; use path:N, cycle:N, star:N, "
        "grid:R,C, theta:A,B,C, or melon:L1,L2,..."
    )


def cmd_list(_args: argparse.Namespace) -> int:
    from .experiments import all_experiments  # noqa: PLC0415

    rows = [[e.exp_id, e.paper_ref, e.title] for e in all_experiments()]
    print(format_table(["experiment", "paper ref", "title"], rows))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from .experiments import all_experiments, render_results, run_experiment  # noqa: PLC0415
    from .perf import GLOBAL_STATS  # noqa: PLC0415
    from .perf.config import CONFIG  # noqa: PLC0415

    if args.perf_stats:
        GLOBAL_STATS.reset()
    with CONFIG.overridden(
        workers=args.workers,
        streaming=True if args.streaming else None,
        disk_cache=True if args.disk_cache else None,
    ):
        if "all" in args.experiments:
            results = [e.run() for e in all_experiments()]
        else:
            results = [run_experiment(exp_id) for exp_id in args.experiments]
    print(render_results(results))
    if args.perf_stats:
        from .experiments.report import render_perf_stats  # noqa: PLC0415

        print()
        print(render_perf_stats(GLOBAL_STATS))
    return 0 if all(r.ok for r in results) else 1


def cmd_schemes(_args: argparse.Namespace) -> int:
    rows = [
        [name, PAPER_REFERENCES[name], PAPER_SIZE_CLAIMS[name]]
        for name in scheme_names()
    ]
    print(format_table(["scheme", "paper result", "certificate size"], rows))
    return 0


def cmd_views(args: argparse.Namespace) -> int:
    from .local.views import describe_view, extract_all_views  # noqa: PLC0415

    lcp = make_lcp(args.scheme)
    graph = parse_graph_spec(args.graph)
    instance = Instance.build(graph)
    labeled = instance.with_labeling(lcp.prover.certify(instance))
    views = extract_all_views(labeled, args.radius, include_ids=not lcp.anonymous)
    for v, view in views.items():
        verdict = "accept" if lcp.decoder.decide(view) else "reject"
        print(f"node {v!r} [{verdict}]")
        print(describe_view(view))
        print()
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    lcp = make_lcp(args.scheme)
    graph = parse_graph_spec(args.graph)
    instance = Instance.build(graph)
    labeling = lcp.prover.certify(instance)
    result = lcp.check(instance.with_labeling(labeling))
    print(f"scheme:   {lcp.name}  ({PAPER_REFERENCES[args.scheme]})")
    print(f"graph:    {args.graph}  (n={graph.order}, m={graph.size})")
    bits = lcp.labeling_bits(labeling, instance.n, instance.id_bound)
    print(f"certificates: max {bits} bits/node")
    verdict = "unanimously ACCEPTED" if result.unanimous else (
        f"REJECTED at nodes {sorted(result.rejecting, key=repr)}"
    )
    print(f"verdict:  {verdict}")
    if args.show_certificates:
        for v in graph.nodes:
            print(f"  node {v!r}: {labeling.of(v)!r}")
    return 0 if result.unanimous else 1


def _attach_progress(*buses, events_out: str | None = None):
    """Wire the stock progress subscribers to *buses* (plus the global
    bus, where the orderly generator announces — deduplicated when a
    context already uses it).  The TTY renderer attaches only on a
    terminal with ``REPRO_NO_PROGRESS`` unset; the JSONL sink only when
    *events_out* is given.  Returns a detach callable (idempotent
    cleanup for a ``finally`` block)."""
    from .obs import GLOBAL_PROGRESS, JSONLSink, TTYRenderer, progress_enabled  # noqa: PLC0415

    targets = list(dict.fromkeys((*buses, GLOBAL_PROGRESS)))
    renderer = TTYRenderer() if progress_enabled() else None
    sink = JSONLSink(events_out) if events_out is not None else None
    for bus in targets:
        if renderer is not None:
            bus.subscribe(renderer)
        if sink is not None:
            bus.subscribe(sink)

    def detach() -> None:
        for bus in targets:
            if renderer is not None:
                bus.unsubscribe(renderer)
            if sink is not None:
                bus.unsubscribe(sink)
        if renderer is not None:
            renderer.close()
        if sink is not None:
            sink.close()

    return detach


def _resolve_hiding_scheme(args: argparse.Namespace) -> str:
    """The scheme from the positional or the ``--scheme`` option (they
    are aliases; giving both only works when they agree)."""
    positional, option = args.scheme_pos, args.scheme_opt
    if positional is not None and option is not None and positional != option:
        raise SystemExit(
            f"repro hiding: conflicting schemes {positional!r} and {option!r}"
        )
    scheme = option if option is not None else positional
    if scheme is None:
        raise SystemExit(
            "repro hiding: a scheme is required (positional or --scheme)"
        )
    return scheme


def cmd_hiding(args: argparse.Namespace) -> int:
    from .engine import RunContext, decide_hiding, resolve_plan  # noqa: PLC0415
    from .perf import GLOBAL_STATS, PerfStats  # noqa: PLC0415
    from .perf.config import CONFIG  # noqa: PLC0415

    scheme = _resolve_hiding_scheme(args)
    lcp = make_lcp(scheme)
    traced = args.trace or args.trace_out is not None or args.profile
    if traced:
        from .obs import RunReport, Tracer, render_span_tree  # noqa: PLC0415

        tracer = Tracer()
        ctx = RunContext.observed(tracer)
        stats = ctx.stats
    else:
        stats = PerfStats() if args.perf_stats else GLOBAL_STATS
        ctx = RunContext(stats=stats)
    detach_progress = _attach_progress(ctx.progress)
    materialized_route = (
        args.backend == "materialized" if args.backend is not None
        else args.materialized
    )
    if args.backend is not None and args.materialized and not materialized_route:
        raise SystemExit(
            f"repro hiding: --backend {args.backend} conflicts with --materialized"
        )
    try:
        with CONFIG.overridden(
            disk_cache_dir=args.cache_dir,
            # The default route is the auto rule: streaming, upgraded to the
            # vectorized kernel backend when numpy is importable.
            streaming=not materialized_route,
        ):
            # The routing decision (flags -> backend/caches) is the engine's
            # plan resolver; the CLI only translates its vocabulary.
            disk_cache = False if materialized_route else not args.no_disk_cache
            plan = resolve_plan(
                backend=args.backend if args.backend is not None else "auto",
                workers=args.workers,
                disk_cache=disk_cache,
                symmetry=args.symmetry,
            )
            verdict = decide_hiding(lcp, args.n, plan, ctx=ctx)
    finally:
        detach_progress()
    g = verdict.ngraph
    print(f"scheme:    {lcp.name}  ({PAPER_REFERENCES[scheme]})")
    print(f"plan:      {plan.describe()}")
    print(f"sweep:     n <= {args.n}, {g.instances_scanned} labeled instances scanned")
    print(f"V(D, n):   {g.order} views, {g.size} edges"
          + ("" if g.has_provenance else "  [from disk cache, no provenance]"))
    print(f"verdict:   {verdict.summary()}")
    print(f"produced:  {verdict.provenance.summary()}")
    if verdict.witness:
        walk = " -> ".join(str(g.index[v]) for v in verdict.witness)
        print(f"witness:   view walk {walk}")
    if traced:
        report = RunReport.from_run(
            tracer=tracer,
            metrics=ctx.metrics,
            stats=stats,
            verdict=verdict,
            plan=plan,
            scheme=lcp.name,
            n=args.n,
        )
        canonical = report.write(path=args.trace_out)
        if args.trace:
            print()
            print(render_span_tree(tracer.finished_spans()))
        coverage = report.payload["span_coverage"]
        print(f"report:    {canonical}  (span coverage {coverage:.1%})")
        if args.profile:
            from .obs import render_profile, write_folded  # noqa: PLC0415

            spans = tracer.finished_spans()
            print()
            print(render_profile(spans, wall_time_s=verdict.provenance.wall_time_s))
            folded = (
                args.folded_out
                if args.folded_out is not None
                else canonical.with_suffix(".folded")
            )
            print(f"folded:    {write_folded(spans, folded)}")
    if args.perf_stats:
        print()
        print(stats.render())
    return 0


def _family_choices() -> list[str]:
    from .graphs.families import graph_family_names  # noqa: PLC0415

    return graph_family_names()


def _csv_ints(text: str | None) -> tuple[int | None, ...]:
    """Parse a comma-separated int list (``None`` -> the native-value
    singleton the campaign axes use as their default)."""
    if text is None:
        return (None,)
    try:
        return tuple(int(part) for part in text.split(",") if part)
    except ValueError:
        raise SystemExit(f"expected a comma-separated list of ints, got {text!r}")


def cmd_frontier_run(args: argparse.Namespace) -> int:
    from .campaign import CampaignSpec, build_frontier_report, run_campaign  # noqa: PLC0415
    from .engine import resolve_plan  # noqa: PLC0415
    from .perf.config import CONFIG  # noqa: PLC0415

    schemes = tuple(part for part in args.schemes.split(",") if part)
    families = tuple(part for part in args.family.split(",") if part)
    with CONFIG.overridden(disk_cache_dir=args.cache_dir):
        plan = resolve_plan(
            backend=args.backend if args.backend is not None else "auto",
            workers=args.workers,
            disk_cache=False if args.no_disk_cache else None,
            symmetry=args.symmetry,
        )
        spec = CampaignSpec.sweep(
            schemes,
            n_max=args.n_max,
            n_min=args.n_min,
            k_values=_csv_ints(args.k),
            r_values=_csv_ints(args.r),
            families=families,
            alphabet_limits=_csv_ints(args.alphabet_limit),
            plan=plan,
        )
        errors = spec.validate()
        if errors:
            raise SystemExit("repro frontier run: " + "; ".join(errors))

        def progress(result) -> None:
            verdict = (
                f"ERROR {result.error}"
                if result.error is not None
                else f"hiding={result.hiding}"
            )
            print(f"  {result.cell.label()}: {verdict}", file=sys.stderr)

        from .obs import progress_enabled  # noqa: PLC0415

        # On a terminal the live single-line renderer supersedes the
        # per-cell scroll; off-terminal (CI logs) the scroll remains.
        live = progress_enabled()
        detach_progress = _attach_progress(events_out=args.events_out)
        try:
            run = run_campaign(
                spec, progress=progress if not (args.quiet or live) else None
            )
        finally:
            detach_progress()
    report = build_frontier_report(run)
    canonical = report.write(path=args.out)
    print(report.render())
    print(f"report:    {canonical}")
    return 0 if not run.errors else 1


def cmd_frontier_show(args: argparse.Namespace) -> int:
    from .campaign import FrontierReport, validate_frontier_report  # noqa: PLC0415

    report = FrontierReport.load(args.ref, directory=args.runs_dir)
    errors = validate_frontier_report(report.payload)
    if errors:
        for error in errors:
            print(f"INVALID: {error}")
        return 1
    print(report.render())
    return 0


def _format_age(seconds: float) -> str:
    """Coarse human age for the report listing."""
    if seconds < 90:
        return f"{int(seconds)}s"
    if seconds < 90 * 60:
        return f"{int(seconds / 60)}m"
    if seconds < 36 * 3600:
        return f"{int(seconds / 3600)}h"
    return f"{int(seconds / 86400)}d"


def _report_list(args: argparse.Namespace) -> int:
    import json  # noqa: PLC0415
    import time  # noqa: PLC0415
    from pathlib import Path  # noqa: PLC0415

    from .obs.report import runs_dir  # noqa: PLC0415

    root = Path(args.runs_dir) if args.runs_dir is not None else runs_dir()
    if not root.is_dir():
        print(f"no reports ({root} does not exist)")
        return 0
    entries = []
    for path in sorted(root.glob("*.json")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            continue
        if not isinstance(payload, dict) or "schema" not in payload:
            continue
        decision = payload.get("decision") or {}
        created = payload.get("created")
        if not isinstance(created, (int, float)):
            created = path.stat().st_mtime
        scheme = payload.get("scheme")
        n = payload.get("n")
        subject = f"{scheme} n<={n}" if scheme else "-"
        entries.append(
            {
                "digest": path.stem,
                "schema": payload.get("schema"),
                "created": created,
                "subject": subject,
                "fingerprint": decision.get("fingerprint") or "-",
            }
        )
    if not entries:
        print(f"no reports under {root}")
        return 0
    entries.sort(key=lambda entry: entry["created"], reverse=True)
    now = time.time()
    rows = [
        [
            entry["digest"],
            entry["schema"],
            _format_age(max(0.0, now - entry["created"])),
            entry["subject"],
            entry["fingerprint"][:16],
        ]
        for entry in entries
    ]
    print(format_table(["digest", "schema", "age", "subject", "decision fp"], rows))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    from .obs.report import RunReport, diff_reports, render_diff, validate_report  # noqa: PLC0415

    if args.action == "list":
        if args.refs:
            raise SystemExit("repro report list: takes no report references")
        return _report_list(args)
    if args.action == "diff":
        if len(args.refs) != 2:
            raise SystemExit("repro report diff: exactly two reports required")
        a = RunReport.load(args.refs[0], directory=args.runs_dir)
        b = RunReport.load(args.refs[1], directory=args.runs_dir)
        diff = diff_reports(a, b)
        print(render_diff(diff))
        return 1 if diff["decision_drift"] else 0
    if len(args.refs) != 1:
        raise SystemExit(f"repro report {args.action}: exactly one report required")
    report = RunReport.load(args.refs[0], directory=args.runs_dir)
    if args.action == "profile":
        from .obs import render_profile, write_folded  # noqa: PLC0415

        spans = report.payload.get("spans") or []
        provenance = report.payload.get("provenance") or {}
        wall = provenance.get("wall_time_s")
        if not wall:
            wall = report.payload.get("wall_time_s")
        print(render_profile(spans, wall_time_s=wall))
        if args.folded_out is not None:
            print(f"folded: {write_folded(spans, args.folded_out)}")
        return 0
    if args.action == "validate":
        # Dispatch on the declared schema: frontier reports live in the
        # same runs directory and validate against their own gate.
        from .campaign import FRONTIER_SCHEMA, validate_frontier_report  # noqa: PLC0415

        if report.payload.get("schema") == FRONTIER_SCHEMA:
            errors = validate_frontier_report(report.payload)
            kind = "frontier report"
        else:
            errors = validate_report(report.payload)
            kind = "run report"
        if errors:
            for error in errors:
                print(f"INVALID: {error}")
            return 1
        print(f"valid {kind} {report.digest}")
        return 0
    print(report.render())
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from .perf import default_verdict_cache  # noqa: PLC0415
    from .perf.config import CONFIG  # noqa: PLC0415

    with CONFIG.overridden(disk_cache_dir=args.cache_dir):
        cache = default_verdict_cache()
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached sweep(s) from {cache.root}")
        return 0
    summary = cache.stats_summary()
    print(f"directory:       {summary['directory']}")
    print(f"entries:         {summary['entries']}")
    print(f"bytes:           {summary['bytes']}")
    print(f"format version:  {summary['current_version']}")
    print(f"stale entries:   {summary['stale_entries']}")
    for entry in cache.entries():
        key = entry.get("key", {})
        label = key.get("lcp_name", entry.get("file"))
        print(
            f"  {entry['file']}  {label}  n={key.get('n')}  "
            f"views={entry.get('views')}  edges={entry.get('edges')}  "
            f"v{entry.get('version')}"
        )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json  # noqa: PLC0415
    from pathlib import Path  # noqa: PLC0415

    from .obs import sentinel  # noqa: PLC0415

    paths = args.payloads or [
        name
        for name in ("BENCH_neighborhood.json", "BENCH_hiding.json")
        if Path(name).is_file()
    ]
    if not paths:
        raise SystemExit(
            "repro bench check: no BENCH_*.json payloads found (pass paths "
            "explicitly or run benchmarks/run_benchmarks.py first)"
        )
    fresh = []
    for path in paths:
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (ValueError, OSError) as exc:
            raise SystemExit(f"repro bench check: cannot read {path}: {exc}")
        fresh.extend(sentinel.extract_rows(payload))
    history = sentinel.load_history(args.history)
    verdicts = sentinel.check_regressions(
        fresh, history, threshold=args.threshold, min_samples=args.min_samples
    )
    print(sentinel.render_verdicts(verdicts, verbose=args.verbose))
    regressions = sum(1 for v in verdicts if v["status"] == "regression")
    if not regressions:
        return 0
    if args.advisory:
        print(
            f"advisory mode: {regressions} regression(s) reported, not failing",
            file=sys.stderr,
        )
        return 0
    return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Strong and hiding distributed certification of "
        "k-coloring (PODC 2025) — experiment harness",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help="configure the repro.* logger hierarchy for this invocation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered experiments").set_defaults(fn=cmd_list)

    run_parser = sub.add_parser("run", help="run experiments and print reports")
    run_parser.add_argument("experiments", nargs="+", help="experiment ids, or 'all'")
    run_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="processes for the neighborhood-graph sweeps (default: serial)",
    )
    run_parser.add_argument(
        "--perf-stats",
        action="store_true",
        help="print cache hit rates and stage timings after the reports",
    )
    run_parser.add_argument(
        "--streaming",
        action="store_true",
        help="route hiding sweeps through the early-exit streaming engine",
    )
    run_parser.add_argument(
        "--disk-cache",
        action="store_true",
        help="persist streaming sweep verdicts under .repro_cache/",
    )
    run_parser.set_defaults(fn=cmd_run)

    sub.add_parser("schemes", help="show the LCP scheme catalog").set_defaults(
        fn=cmd_schemes
    )

    certify_parser = sub.add_parser("certify", help="round-trip a scheme on a graph")
    certify_parser.add_argument("scheme", choices=scheme_names())
    certify_parser.add_argument("graph", help="graph spec, e.g. path:8 or melon:2,3,3")
    certify_parser.add_argument(
        "--show-certificates", action="store_true", help="print every certificate"
    )
    certify_parser.set_defaults(fn=cmd_certify)

    views_parser = sub.add_parser("views", help="print every node's certified view")
    views_parser.add_argument("scheme", choices=scheme_names())
    views_parser.add_argument("graph", help="graph spec, e.g. path:4")
    views_parser.add_argument("--radius", type=int, default=1)
    views_parser.set_defaults(fn=cmd_views)

    hiding_parser = sub.add_parser(
        "hiding", help="decide hiding via the streaming early-exit engine"
    )
    hiding_parser.add_argument(
        "scheme_pos",
        nargs="?",
        default=None,
        metavar="scheme",
        choices=scheme_names(),
        help="LCP scheme to sweep (equivalently --scheme)",
    )
    hiding_parser.add_argument(
        "--scheme",
        dest="scheme_opt",
        default=None,
        choices=scheme_names(),
        help="LCP scheme to sweep (alias for the positional)",
    )
    hiding_parser.add_argument(
        "--n", type=int, required=True, metavar="N", help="sweep bound (max nodes)"
    )
    hiding_parser.add_argument(
        "--materialized",
        action="store_true",
        help="use the classic full-build pipeline instead of streaming",
    )
    from .engine import available_backends  # noqa: PLC0415

    hiding_parser.add_argument(
        "--backend",
        default=None,
        # Derived from the live registry: capability-gated backends
        # (vectorized without numpy) drop out of the choices and of the
        # unknown-name error alike.
        choices=["auto", *available_backends()],
        help="engine backend to run (default: auto — streaming, upgraded "
        "to vectorized when numpy is importable; see `repro hiding` docs)",
    )
    hiding_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="processes for the sweep (default: serial)",
    )
    hiding_parser.add_argument(
        "--no-disk-cache",
        action="store_true",
        help="skip the persistent .repro_cache/ for this run",
    )
    hiding_parser.add_argument(
        "--symmetry",
        choices=["auto", "on", "off"],
        default=None,
        help="symmetry reduction: orderly graph generation + "
        "automorphism-orbit pruning (auto prunes anonymous schemes only; "
        "default: the session config)",
    )
    hiding_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR", help="cache directory override"
    )
    hiding_parser.add_argument(
        "--perf-stats",
        action="store_true",
        help="print counters and stage timings after the verdict",
    )
    hiding_parser.add_argument(
        "--trace",
        action="store_true",
        help="trace the decision and print the span tree",
    )
    hiding_parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="write the run report to FILE (the content-addressed copy "
        "under .repro_runs/ is always written for traced runs)",
    )
    hiding_parser.add_argument(
        "--profile",
        action="store_true",
        help="trace the decision and print the span self-time table, "
        "plus a flamegraph-compatible folded-stack file next to the "
        "run report",
    )
    hiding_parser.add_argument(
        "--folded-out",
        default=None,
        metavar="FILE",
        help="with --profile: folded-stack output path (default: the "
        "run report path with a .folded suffix)",
    )
    hiding_parser.set_defaults(fn=cmd_hiding)

    frontier_parser = sub.add_parser(
        "frontier",
        help="sweep the (scheme, family, n, k, r, alphabet) parameter "
        "space and report where the hiding verdict flips",
    )
    frontier_sub = frontier_parser.add_subparsers(dest="action", required=True)
    fr_run = frontier_sub.add_parser(
        "run", help="run a campaign and write the frontier report"
    )
    fr_run.add_argument(
        "schemes",
        help="comma-separated scheme names, e.g. even-cycle or "
        "degree-one,even-cycle",
    )
    fr_run.add_argument(
        "--n-max", type=int, required=True, metavar="N", help="largest sweep bound"
    )
    fr_run.add_argument(
        "--n-min", type=int, default=1, metavar="N", help="smallest sweep bound"
    )
    fr_run.add_argument(
        "--k",
        default=None,
        metavar="K1,K2",
        help="comma-separated k values (default: each scheme's native k)",
    )
    fr_run.add_argument(
        "--r",
        default=None,
        metavar="R1,R2",
        help="comma-separated verification radii (default: native r)",
    )
    fr_run.add_argument(
        "--family",
        default="all",
        metavar="F1,F2",
        help="comma-separated graph families "
        f"(known: {', '.join(_family_choices())})",
    )
    fr_run.add_argument(
        "--alphabet-limit",
        default=None,
        metavar="A1,A2",
        help="comma-separated caps on the certificate alphabet "
        "(default: the full alphabet)",
    )
    from .engine import available_backends as _backends  # noqa: PLC0415

    fr_run.add_argument(
        "--backend",
        default=None,
        choices=["auto", *_backends()],
        help="engine backend for every cell (default: auto)",
    )
    fr_run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="processes per sweep (default: serial)",
    )
    fr_run.add_argument(
        "--symmetry", choices=["auto", "on", "off"], default=None,
        help="symmetry reduction for the sweeps (default: the session config)",
    )
    fr_run.add_argument(
        "--no-disk-cache", action="store_true",
        help="skip the persistent .repro_cache/ for this campaign",
    )
    fr_run.add_argument(
        "--cache-dir", default=None, metavar="DIR", help="cache directory override"
    )
    fr_run.add_argument(
        "--out", default=None, metavar="FILE",
        help="also write the frontier report to FILE (the content-"
        "addressed copy under .repro_runs/ is always written)",
    )
    fr_run.add_argument(
        "--quiet", action="store_true", help="suppress per-cell progress lines"
    )
    fr_run.add_argument(
        "--events-out",
        default=None,
        metavar="FILE",
        help="append the raw progress event stream (campaign_started, "
        "cell_started/finished, instances_scanned deltas) as JSONL, "
        "joinable with traces via trace_id",
    )
    fr_run.set_defaults(fn=cmd_frontier_run)
    fr_show = frontier_sub.add_parser(
        "show", help="validate and render a frontier report"
    )
    fr_show.add_argument("ref", help="report path or digest under the runs dir")
    fr_show.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="runs directory for digest lookups (default: $REPRO_RUNS_DIR "
        "or ./.repro_runs)",
    )
    fr_show.set_defaults(fn=cmd_frontier_show)

    report_parser = sub.add_parser(
        "report", help="inspect, diff, validate, list, or profile run reports"
    )
    report_parser.add_argument(
        "action", choices=["show", "diff", "validate", "list", "profile"]
    )
    report_parser.add_argument(
        "refs", nargs="*", help="report path(s) or digest(s) under the runs dir"
    )
    report_parser.add_argument(
        "--runs-dir",
        default=None,
        metavar="DIR",
        help="runs directory for digest lookups (default: $REPRO_RUNS_DIR "
        "or ./.repro_runs)",
    )
    report_parser.add_argument(
        "--folded-out",
        default=None,
        metavar="FILE",
        help="with profile: also write the flamegraph-compatible "
        "folded-stack export to FILE",
    )
    report_parser.set_defaults(fn=cmd_report)

    bench_parser = sub.add_parser(
        "bench", help="benchmark trajectory tools (regression sentinel)"
    )
    bench_sub = bench_parser.add_subparsers(dest="action", required=True)
    bench_check = bench_sub.add_parser(
        "check",
        help="compare fresh BENCH_*.json rows against the recorded timing "
        "history; exits nonzero on confirmed regressions",
    )
    bench_check.add_argument(
        "payloads",
        nargs="*",
        help="BENCH payload path(s) (default: BENCH_neighborhood.json and "
        "BENCH_hiding.json when present)",
    )
    bench_check.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help="history JSONL (default: <runs dir>/bench_history.jsonl)",
    )
    from .obs.sentinel import DEFAULT_MIN_SAMPLES, DEFAULT_THRESHOLD  # noqa: PLC0415

    bench_check.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        metavar="X",
        help="regression ratio vs the trailing median "
        f"(default: {DEFAULT_THRESHOLD})",
    )
    bench_check.add_argument(
        "--min-samples",
        type=int,
        default=DEFAULT_MIN_SAMPLES,
        metavar="N",
        help="prior samples a series needs before it can regress "
        f"(default: {DEFAULT_MIN_SAMPLES})",
    )
    bench_check.add_argument(
        "--advisory",
        action="store_true",
        help="report regressions but exit 0 (history-seeding runs)",
    )
    bench_check.add_argument(
        "--verbose", action="store_true", help="show healthy rows too"
    )
    bench_check.set_defaults(fn=cmd_bench)

    cache_parser = sub.add_parser(
        "cache", help="inspect or clear the persistent sweep cache"
    )
    cache_parser.add_argument("action", choices=["stats", "clear"])
    cache_parser.add_argument(
        "--cache-dir", default=None, metavar="DIR", help="cache directory override"
    )
    cache_parser.set_defaults(fn=cmd_cache)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level is not None:
        from .obs.logs import setup_logging  # noqa: PLC0415

        setup_logging(args.log_level)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
