"""Verdict cache tiers behind one :class:`VerdictStore` protocol.

Two tiers ship with the engine:

* :class:`MemoryVerdictStore` — an in-process dict keyed by the resolved
  sweep identity.  Exact object round trip: a hit returns the very
  :class:`~repro.engine.verdict.Verdict` that was stored, so repeated
  identical sweeps share one immutable envelope (and ``is``-level memo
  semantics survive the refactor).
* :class:`DiskVerdictStore` — the persistent content-addressed JSON-lines
  store of :mod:`repro.perf.persist`, lifted to the ``Verdict`` level.
  Lossy round trip: instance provenance does not survive
  (``ngraph.has_provenance`` is ``False`` on reload) and the returned
  envelope's :class:`~repro.engine.verdict.Provenance` records the disk
  hit.  The on-disk key layout for streaming sweeps is byte-compatible
  with the pre-engine cache, so existing ``.repro_cache/`` entries keep
  serving.

New tiers (remote stores, sharded stores) implement the same two
methods and plug into :class:`~repro.engine.context.RunContext`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..neighborhood.hiding import HidingVerdict
from ..neighborhood.ngraph import NeighborhoodGraph
from ..perf.stats import GLOBAL_STATS, PerfStats
from .verdict import Provenance, Verdict


@runtime_checkable
class VerdictStore(Protocol):
    """One cache tier: load/store engine verdicts by sweep identity.

    *key* is tier-specific — the memory tier hashes a tuple, the disk
    tier digests a readable dict — and always produced by the engine's
    key builders, never by callers.
    """

    def load(self, key, stats: PerfStats | None = None) -> Verdict | None: ...

    def store(self, key, verdict: Verdict, stats: PerfStats | None = None) -> bool: ...


class MemoryVerdictStore:
    """Process-wide verdict memo; one instance per backend.

    *hit_counter* names the :class:`PerfStats` counter bumped on hits
    (``stream_memo_hits`` keeps its pre-engine name so existing
    dashboards and tests read unchanged).
    """

    def __init__(self, hit_counter: str = "engine_memo_hits") -> None:
        self.hit_counter = hit_counter
        self._entries: dict[tuple, Verdict] = {}

    def load(self, key, stats: PerfStats | None = None) -> Verdict | None:
        stats = stats or GLOBAL_STATS
        verdict = self._entries.get(key)
        if verdict is not None:
            stats.incr(self.hit_counter)
        return verdict

    def store(self, key, verdict: Verdict, stats: PerfStats | None = None) -> bool:
        self._entries[key] = verdict
        return True

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class DiskVerdictStore:
    """The persistent tier: ``Verdict`` ↔ the JSON-lines body format of
    :class:`repro.perf.persist.PersistentVerdictCache`.

    The underlying cache is re-resolved per operation (it is one
    ``Path``), so ``CONFIG.disk_cache_dir`` / ``$REPRO_CACHE_DIR``
    changes take effect immediately — the pre-engine behavior.
    """

    def load(self, key: dict, stats: PerfStats | None = None) -> Verdict | None:
        from ..perf.persist import default_verdict_cache  # noqa: PLC0415

        stats = stats or GLOBAL_STATS
        body = default_verdict_cache().load(key, stats=stats)
        if body is None:
            return None
        with stats.time_stage("disk_cache_load"):
            return _verdict_from_body(key, body)

    def store(self, key: dict, verdict: Verdict, stats: PerfStats | None = None) -> bool:
        from ..perf.persist import default_verdict_cache  # noqa: PLC0415

        stats = stats or GLOBAL_STATS
        with stats.time_stage("disk_cache_store"):
            return default_verdict_cache().store(
                key, _body_from_verdict(verdict), stats=stats
            )


# ----------------------------------------------------------------------
# Serialization between Verdict envelopes and persisted bodies
# ----------------------------------------------------------------------


def _body_from_verdict(verdict: Verdict) -> dict:
    from ..perf import persist  # noqa: PLC0415

    g = verdict.ngraph
    legacy = verdict.legacy
    body = {
        "hiding": verdict.hiding,
        "k": verdict.k,
        "radius": g.radius,
        "include_ids": g.include_ids,
        "early_exit": verdict.provenance.early_exit,
        "instances_scanned": g.instances_scanned,
        "views": [persist.encode_view(view) for view in g.views],
        "edges": [list(edge) for edge in sorted(g.edges)],
        "odd_cycle": (
            None
            if legacy.odd_cycle is None
            else [g.index[view] for view in legacy.odd_cycle]
        ),
        "coloring": (
            None
            if legacy.coloring is None
            else {str(i): c for i, c in legacy.coloring.items()}
        ),
    }
    # The canonical stream-order witness, when it differs from the
    # legacy walk (materialized sweeps).  Streaming bodies stay
    # byte-compatible with the pre-engine format.
    if verdict.witness is not None and verdict.witness != legacy.odd_cycle:
        body["witness"] = [g.index[view] for view in verdict.witness]
    return body


def _verdict_from_body(key: dict, body: dict) -> Verdict:
    from ..perf import persist  # noqa: PLC0415

    views = [persist.decode_view(payload) for payload in body["views"]]
    ngraph = NeighborhoodGraph(radius=body["radius"], include_ids=body["include_ids"])
    ngraph.views = views
    ngraph.index = {view: i for i, view in enumerate(views)}
    for i, j in body["edges"]:
        ngraph.edges.add((i, j))
        ngraph.adjacency.setdefault(i, []).append(j)
        if j != i:
            ngraph.adjacency.setdefault(j, []).append(i)
    ngraph.instances_scanned = body["instances_scanned"]
    # Instance witnesses per view/edge do not survive the round trip;
    # consumers that trace views back to instances must run fresh.
    ngraph.has_provenance = False
    odd_cycle = (
        None
        if body["odd_cycle"] is None
        else tuple(views[i] for i in body["odd_cycle"])
    )
    coloring = (
        None
        if body["coloring"] is None
        else {int(i): c for i, c in body["coloring"].items()}
    )
    legacy = HidingVerdict(
        k=body["k"],
        hiding=body["hiding"],
        ngraph=ngraph,
        odd_cycle=odd_cycle,
        coloring=coloring,
    )
    witness_indices = body.get("witness")
    witness = (
        tuple(views[i] for i in witness_indices)
        if witness_indices is not None
        else odd_cycle
    )
    provenance = Provenance(
        backend=key.get("backend", "streaming"),
        n=key.get("n", -1),
        workers=0,
        early_exit=bool(body.get("early_exit", True)),
        instances_scanned=body["instances_scanned"],
        views=len(views),
        edges=len(ngraph.edges),
        disk_cache_hit=True,
        symmetry_pruned=key.get("symmetry") == "on",
    )
    return Verdict(
        k=body["k"],
        hiding=body["hiding"],
        witness=witness,
        coloring=coloring,
        ngraph=ngraph,
        provenance=provenance,
        legacy=legacy,
    )
