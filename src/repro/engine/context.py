"""Explicit run context for the engine: config + stats + metrics +
tracer + cache tiers.

Pre-engine code threaded the perf knobs and counters through two mutable
module globals (``repro.perf.CONFIG`` and ``GLOBAL_STATS``), which every
layer imported and mutated on its own.  A :class:`RunContext` carries
them explicitly: :func:`repro.engine.decide_hiding` resolves its plan
against ``ctx.config`` once, records counters on ``ctx.stats``, and
consults ``ctx.memory_store(backend)`` / ``ctx.disk`` — nothing in the
engine writes a module global.  ``RunContext.default()`` binds the
process-wide objects, so call sites that never build a context keep the
historical behavior; tests and benchmarks build isolated contexts
instead of save/restore dances.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..obs.metrics import GLOBAL_METRICS, MetricsRegistry
from ..obs.progress import GLOBAL_PROGRESS, ProgressBus
from ..obs.trace import NULL_TRACER, Tracer
from ..perf.config import CONFIG, PerfConfig
from ..perf.stats import GLOBAL_STATS, PerfStats
from .stores import DiskVerdictStore, MemoryVerdictStore, VerdictStore

#: Process-wide memo tiers, one per backend.  ``stream_memo_hits`` keeps
#: its pre-engine counter name; the materialized memo gains its own.
_SHARED_MEMORY_STORES: dict[str, MemoryVerdictStore] = {
    "materialized": MemoryVerdictStore(hit_counter="sweep_memo_hits"),
    "streaming": MemoryVerdictStore(hit_counter="stream_memo_hits"),
}

_SHARED_DISK_STORE = DiskVerdictStore()


def shared_memory_store(backend: str) -> MemoryVerdictStore:
    """The process-wide memo tier for *backend* (created on demand)."""
    store = _SHARED_MEMORY_STORES.get(backend)
    if store is None:
        store = _SHARED_MEMORY_STORES[backend] = MemoryVerdictStore(
            hit_counter=f"{backend}_memo_hits"
        )
    return store


@dataclass
class RunContext:
    """Everything a hiding decision needs besides the question itself.

    * ``config`` — the :class:`PerfConfig` plans resolve against
      (default: the live global ``CONFIG``, read once per decision).
    * ``stats`` — the :class:`PerfStats` sink for every counter and
      stage timer of the run.
    * ``metrics`` — the :class:`~repro.obs.metrics.MetricsRegistry` for
      structured measurements (decision-latency histograms, gauges);
      bind the stats handle to it (``stats.bind_metrics(metrics)``) to
      mirror every counter into the registry.
    * ``tracer`` — the :class:`~repro.obs.trace.Tracer` collecting the
      run's span tree; the default :data:`~repro.obs.trace.NULL_TRACER`
      records nothing at zero cost.
    * ``progress`` — the :class:`~repro.obs.progress.ProgressBus` for
      live telemetry events.  The default is the process-wide
      :data:`~repro.obs.progress.GLOBAL_PROGRESS` bus, which with no
      subscribers costs one truthiness test per emission — subscribe a
      renderer or sink there to observe any default-context run.
      Purely observational: nothing downstream of an event feeds back
      into decisions or cache identities.
    * ``memory`` — per-backend memo tiers; ``None`` entries fall back to
      the shared process-wide stores.
    * ``disk`` — the persistent tier.
    """

    config: PerfConfig = field(default_factory=lambda: CONFIG)
    stats: PerfStats = field(default_factory=lambda: GLOBAL_STATS)
    metrics: MetricsRegistry = field(default_factory=lambda: GLOBAL_METRICS)
    tracer: Tracer = field(default=NULL_TRACER)
    progress: ProgressBus = field(default_factory=lambda: GLOBAL_PROGRESS)
    memory: dict[str, MemoryVerdictStore] | None = None
    disk: VerdictStore = field(default_factory=lambda: _SHARED_DISK_STORE)

    @classmethod
    def default(cls) -> "RunContext":
        """The context bound to the process-wide config/stats/stores."""
        return cls()

    @classmethod
    def isolated(cls, config: PerfConfig | None = None) -> "RunContext":
        """A context with private stats, metrics, and memo tiers (tests,
        benchmarks) — nothing it records leaks into the process state."""
        metrics = MetricsRegistry()
        return cls(
            config=config if config is not None else CONFIG,
            stats=PerfStats().bind_metrics(metrics),
            metrics=metrics,
            progress=ProgressBus(),
            memory={
                "materialized": MemoryVerdictStore(hit_counter="sweep_memo_hits"),
                "streaming": MemoryVerdictStore(hit_counter="stream_memo_hits"),
            },
        )

    @classmethod
    def observed(
        cls,
        tracer: Tracer | None = None,
        config: PerfConfig | None = None,
    ) -> "RunContext":
        """An isolated context wired for observability: a live tracer
        plus a fresh metrics registry backing a fresh stats handle —
        what the CLI's ``--trace``/``--trace-out`` and the benchmark
        report emitters build per run."""
        ctx = cls.isolated(config=config)
        return replace(ctx, tracer=tracer if tracer is not None else Tracer())

    def memory_store(self, backend: str) -> MemoryVerdictStore:
        if self.memory is not None:
            store = self.memory.get(backend)
            if store is None:
                store = self.memory[backend] = MemoryVerdictStore(
                    hit_counter=f"{backend}_memo_hits"
                )
            return store
        return shared_memory_store(backend)
