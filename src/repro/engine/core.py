"""`decide_hiding` — the single entrypoint for every hiding decision.

Every surface (CLI, experiment runner, benchmarks, library callers, and
the legacy keyword shims) answers "does ``D`` hide a ``k``-coloring up
to ``n``?" through this one function.  The tier order per decision:

1. **memory memo** — a hit returns the originally produced envelope
   object as-is (``is``-level memo semantics);
2. **backend shortcut** — backend-private state that answers without a
   sweep (the streaming warm-start witness); counts as fresh for the
   write-back tiers below;
3. **disk store** — a hit is recorded in the envelope's provenance and
   memoized, but never written back to disk;
4. **backend sweep** — compute, then populate memory and (when the plan
   says so) disk.
"""

from __future__ import annotations

from ..certification.lcp import LCP
from .backends import clear_warm_states, disk_key, get_backend, memory_key
from .context import RunContext, _SHARED_MEMORY_STORES
from .plan import ExecutionPlan
from .verdict import Verdict


def decide_hiding(
    lcp: LCP,
    n: int,
    plan: ExecutionPlan | None = None,
    *,
    k: int | None = None,
    ctx: RunContext | None = None,
) -> Verdict:
    """Decide whether *lcp* hides a ``k``-coloring up to *n* nodes.

    *plan* says how (backend, workers, caches); an unresolved plan — or
    ``None``, meaning "all defaults" — is resolved against ``ctx.config``
    first.  *k* is a guard, not a parameter: the decided ``k`` is always
    ``lcp.k``, and passing a different value raises.  *ctx* defaults to
    the process-wide context (global config, stats, shared cache tiers).

    Returns the unified :class:`~repro.engine.verdict.Verdict` envelope;
    pre-engine consumers read ``verdict.legacy``.
    """
    if k is not None and k != lcp.k:
        raise ValueError(
            f"decide_hiding(k={k}) conflicts with the scheme's k={lcp.k}; "
            "the decided k is always lcp.k"
        )
    if ctx is None:
        ctx = RunContext.default()
    plan = (plan if plan is not None else ExecutionPlan()).resolve(ctx.config)
    backend = get_backend(plan.backend)

    memory = ctx.memory_store(plan.backend) if plan.memory_cache else None
    mem_key = memory_key(lcp, n, plan)
    if memory is not None:
        cached = memory.load(mem_key, stats=ctx.stats)
        if cached is not None:
            return cached

    verdict = backend.shortcut(lcp, n, plan, ctx)
    if verdict is None and plan.disk_cache:
        verdict = ctx.disk.load(disk_key(lcp, n, plan), stats=ctx.stats)
        if verdict is not None:
            if memory is not None:
                memory.store(mem_key, verdict, stats=ctx.stats)
            return verdict

    if verdict is None:
        verdict = backend.run(lcp, n, plan, ctx)

    if memory is not None:
        memory.store(mem_key, verdict, stats=ctx.stats)
    if plan.disk_cache:
        ctx.disk.store(disk_key(lcp, n, plan), verdict, stats=ctx.stats)
    return verdict


def clear_memory_store(backend: str) -> None:
    """Drop the shared in-process memo tier for one backend."""
    store = _SHARED_MEMORY_STORES.get(backend)
    if store is not None:
        store.clear()


def clear_engine_state() -> None:
    """Drop every shared in-process engine state: all backend memo tiers
    and the streaming warm-start states (benchmarks, test isolation).
    The persistent disk store is left alone (``repro cache clear``)."""
    for store in _SHARED_MEMORY_STORES.values():
        store.clear()
    clear_warm_states()
