"""`decide_hiding` — the single entrypoint for every hiding decision.

Every surface (CLI, experiment runner, benchmarks, library callers, and
the legacy keyword shims) answers "does ``D`` hide a ``k``-coloring up
to ``n``?" through this one function.  The tier order per decision:

1. **memory memo** — a hit returns the originally produced envelope
   object as-is (``is``-level memo semantics);
2. **backend shortcut** — backend-private state that answers without a
   sweep (the streaming warm-start witness); counts as fresh for the
   write-back tiers below;
3. **disk store** — a hit is recorded in the envelope's provenance and
   memoized, but never written back to disk;
4. **backend sweep** — compute, then populate memory and (when the plan
   says so) disk.

Observability: the whole decision runs inside the context tracer's
``decide_hiding`` root span, with one child span per tier consulted
(plan resolution, memory, shortcut, disk, backend, write-back) so a
traced run's span tree accounts for essentially all of its wall time.
Fresh verdicts are stamped with the tracer's ``trace_id`` (linking them
to their run report), every decision lands in the context metrics as a
``decision_latency_seconds`` observation, and the routing outcome is
logged on the ``repro.engine`` logger.
"""

from __future__ import annotations

import time
from dataclasses import replace

from ..certification.lcp import LCP
from ..obs.logs import get_logger
from .backends import clear_warm_states, disk_key, get_backend, memory_key
from .context import RunContext, _SHARED_MEMORY_STORES
from .plan import ExecutionPlan
from .verdict import Verdict

log = get_logger("engine")


def _stamp_trace(verdict: Verdict, ctx: RunContext) -> Verdict:
    """Attach the active trace id to a verdict's provenance (no-op for
    untraced runs or verdicts already linked to a report)."""
    tracer = ctx.tracer
    if not tracer.active or verdict.provenance.trace_id is not None:
        return verdict
    return replace(
        verdict, provenance=replace(verdict.provenance, trace_id=tracer.trace_id)
    )


def decide_hiding(
    lcp: LCP,
    n: int,
    plan: ExecutionPlan | None = None,
    *,
    k: int | None = None,
    r: int | None = None,
    ctx: RunContext | None = None,
) -> Verdict:
    """Decide whether *lcp* hides a ``k``-coloring up to *n* nodes.

    *plan* says how (backend, workers, caches); an unresolved plan — or
    ``None``, meaning "all defaults" — is resolved against ``ctx.config``
    first.  *k* and *r* are real decision inputs: a non-native value
    re-parameterizes the scheme for this decision
    (:func:`repro.certification.lcp.parametrized`), changing the
    yes-instance filter / verification radius and with them every cache
    identity — ``lcp.k`` and ``lcp.radius`` are fields of both the
    family key and the disk key, so the native parameters keep their
    pre-campaign content addresses byte-for-byte.  ``None`` (or the
    native value) decides the scheme as registered.  *ctx* defaults to
    the process-wide context (global config, stats, shared cache tiers).

    Returns the unified :class:`~repro.engine.verdict.Verdict` envelope;
    pre-engine consumers read ``verdict.legacy``.
    """
    if k is not None or r is not None:
        from ..certification.lcp import parametrized  # noqa: PLC0415

        lcp = parametrized(lcp, k=k, radius=r)
    if ctx is None:
        ctx = RunContext.default()
    tracer = ctx.tracer
    start = time.perf_counter()
    ctx.progress.emit(
        "decision_started",
        label=f"{lcp.name} k={lcp.k} n<={n}",
        scheme=lcp.name,
        n=n,
        k=lcp.k,
        trace_id=tracer.trace_id if tracer.active else None,
    )
    verdict = None
    try:
        with tracer.span("decide_hiding", scheme=lcp.name, n=n, k=lcp.k) as root:
            with tracer.span("resolve-plan"):
                plan = (plan if plan is not None else ExecutionPlan()).resolve(
                    ctx.config
                )
                backend = get_backend(plan.backend)
            root.set_attribute("backend", plan.backend)
            verdict = _decide(lcp, n, plan, backend, ctx, root)
            return verdict
    finally:
        elapsed = time.perf_counter() - start
        ctx.metrics.incr("decisions_total")
        ctx.metrics.observe("decision_latency_seconds", elapsed)
        ctx.progress.emit(
            "decision_finished",
            label=f"{lcp.name} k={lcp.k} n<={n}",
            scheme=lcp.name,
            n=n,
            k=lcp.k,
            hiding=verdict.hiding if verdict is not None else None,
            wall_time_s=elapsed,
            trace_id=tracer.trace_id if tracer.active else None,
        )


def _decide(lcp: LCP, n: int, plan, backend, ctx: RunContext, root) -> Verdict:
    tracer = ctx.tracer
    memory = ctx.memory_store(plan.backend) if plan.memory_cache else None
    mem_key = memory_key(lcp, n, plan)
    if memory is not None:
        with tracer.span("memory-tier") as span:
            cached = memory.load(mem_key, stats=ctx.stats)
            span.set_attribute("hit", cached is not None)
        if cached is not None:
            log.debug(
                "%s n=%d: memory-tier hit (%s backend)", lcp.name, n, plan.backend
            )
            root.set_attribute("served_by", "memory")
            return cached

    with tracer.span("backend-shortcut") as span:
        verdict = backend.shortcut(lcp, n, plan, ctx)
        span.set_attribute("hit", verdict is not None)
    if verdict is not None:
        log.debug("%s n=%d: %s shortcut answered", lcp.name, n, plan.backend)
        root.set_attribute("served_by", "shortcut")
    elif plan.disk_cache:
        with tracer.span("disk-tier") as span:
            loaded = ctx.disk.load(disk_key(lcp, n, plan), stats=ctx.stats)
            span.set_attribute("hit", loaded is not None)
        if loaded is not None:
            log.debug("%s n=%d: disk-tier hit", lcp.name, n)
            root.set_attribute("served_by", "disk")
            loaded = _stamp_trace(loaded, ctx)
            if memory is not None:
                memory.store(mem_key, loaded, stats=ctx.stats)
            return loaded

    if verdict is None:
        log.debug(
            "%s n=%d: running %s backend (workers=%s)",
            lcp.name,
            n,
            plan.backend,
            plan.workers,
        )
        root.set_attribute("served_by", "sweep")
        with tracer.span(f"backend:{plan.backend}", n=n, workers=plan.workers):
            verdict = backend.run(lcp, n, plan, ctx)
    verdict = _stamp_trace(verdict, ctx)

    with tracer.span("store-back", disk=bool(plan.disk_cache)):
        if memory is not None:
            memory.store(mem_key, verdict, stats=ctx.stats)
        if plan.disk_cache:
            ctx.disk.store(disk_key(lcp, n, plan), verdict, stats=ctx.stats)
    return verdict


def clear_memory_store(backend: str) -> None:
    """Drop the shared in-process memo tier for one backend."""
    store = _SHARED_MEMORY_STORES.get(backend)
    if store is not None:
        store.clear()


def clear_engine_state() -> None:
    """Drop every shared in-process engine state: all backend memo tiers
    and the streaming warm-start states (benchmarks, test isolation).
    The persistent disk store is left alone (``repro cache clear``)."""
    for store in _SHARED_MEMORY_STORES.values():
        store.clear()
    clear_warm_states()
