"""The hiding-decision engine: one entrypoint, declarative plans.

This package unifies the repository's three hiding-decision paths
(materialized sweep, streaming early-exit sweep, parallel builds of
either) behind a single pipeline::

    plan = ExecutionPlan(backend="streaming", workers=4, disk_cache=True)
    verdict = decide_hiding(lcp, n=5, plan=plan)
    print(verdict.summary())
    print(verdict.provenance.summary())   # backend, cache tier, wall time

* :class:`ExecutionPlan` — *how* to decide: backend × workers ×
  early-exit/warm-start × cache tiers.  Unset fields resolve against the
  session's :class:`~repro.perf.config.PerfConfig`.
* :func:`decide_hiding` — *what* to decide; returns a :class:`Verdict`
  envelope (decision + canonical witness + graph + :class:`Provenance`).
* :class:`RunContext` — explicit config/stats/cache carriers for callers
  that must not touch process-wide state.
* :class:`VerdictStore` — the cache-tier protocol; memory and disk tiers
  ship, new tiers plug into a context.
* :func:`register_backend` — the backend registry; new sweep strategies
  plug in without touching any call site.

The legacy keyword surfaces (``hiding_verdict_up_to(streaming=...)``,
``streaming_hiding_verdict_up_to``) remain as deprecation shims that
translate through :func:`resolve_plan` — the one place the
streaming-vs-materialized routing decision lives.
"""

from .backends import (
    ENGINE_VERSION,
    Backend,
    MaterializedBackend,
    StreamingBackend,
    VectorizedBackend,
    available_backends,
    clear_warm_states,
    get_backend,
    register_backend,
)
from .context import RunContext, shared_memory_store
from .core import clear_engine_state, clear_memory_store, decide_hiding
from .plan import (
    BACKEND_AUTO,
    BACKEND_MATERIALIZED,
    BACKEND_STREAMING,
    BACKEND_VECTORIZED,
    ExecutionPlan,
    resolve_plan,
)
from .stores import DiskVerdictStore, MemoryVerdictStore, VerdictStore
from .verdict import Provenance, Verdict

__all__ = [
    "ENGINE_VERSION",
    "BACKEND_AUTO",
    "BACKEND_MATERIALIZED",
    "BACKEND_STREAMING",
    "BACKEND_VECTORIZED",
    "Backend",
    "DiskVerdictStore",
    "ExecutionPlan",
    "MaterializedBackend",
    "MemoryVerdictStore",
    "Provenance",
    "RunContext",
    "StreamingBackend",
    "VectorizedBackend",
    "Verdict",
    "VerdictStore",
    "available_backends",
    "clear_engine_state",
    "clear_memory_store",
    "clear_warm_states",
    "decide_hiding",
    "get_backend",
    "register_backend",
    "resolve_plan",
    "shared_memory_store",
]
