"""Declarative execution plans for the hiding decision.

An :class:`ExecutionPlan` says *how* a Lemma 3.2 sweep should run —
which backend decides ``k``-colorability, how many workers scan the
enumeration, whether the streaming early exit / cross-``n`` warm start
apply, and which cache tiers (in-memory memo, on-disk store) may serve
or record the verdict — without saying anything about *what* is decided.
The what (scheme, ``n``) goes to :func:`repro.engine.decide_hiding`;
the plan is reusable across schemes and sweeps.

Fields left at ``None`` are resolved against a :class:`~repro.perf.config.
PerfConfig` at decision time (:meth:`ExecutionPlan.resolve`), so a plan
built once by a surface (CLI, runner, benchmark) picks up the session's
knobs without re-reading globals itself.  :func:`resolve_plan` is the
single translation from the legacy keyword vocabulary
(``streaming=``/``workers=``/``disk_cache=``) into a plan — the CLI and
the deprecation shims both delegate to it, so the streaming-vs-
materialized choice lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..perf.config import CONFIG, PerfConfig

#: Known backend names; "auto" defers to ``PerfConfig.streaming`` (and,
#: on the streaming route, upgrades to the vectorized kernel backend
#: when numpy is importable).
BACKEND_AUTO = "auto"
BACKEND_MATERIALIZED = "materialized"
BACKEND_STREAMING = "streaming"
BACKEND_VECTORIZED = "vectorized"


@dataclass(frozen=True)
class ExecutionPlan:
    """How a hiding decision should execute.

    * ``backend`` — ``"materialized"`` (build all of ``V(D, n)``, then
      decide), ``"streaming"`` (fused incremental decision, early exit),
      ``"vectorized"`` (streaming semantics with the numpy batch kernel
      of :mod:`repro.kernel` in the unanimity loop; requires numpy), or
      ``"auto"``: the ``CONFIG.streaming`` knob picks the route, and the
      streaming route upgrades itself to ``vectorized`` when numpy is
      importable — verdicts, witnesses, and provenance counts are
      byte-identical either way.
    * ``workers`` — processes for the enumeration scan; ``None`` defers
      to ``CONFIG.workers``, ``0``/``1`` mean serial.  The verdict is
      byte-identical for every worker count (the parallel builder
      replays chunks in serial order).
    * ``early_exit`` — streaming backend only: stop the sweep at the
      first non-``k``-colorability witness.  ``False`` keeps the fused
      decision but still materializes the complete graph.
    * ``warm_start`` — streaming backend only: resume from the last
      finished sweep of the same scheme at smaller ``n`` (anonymous
      schemes).  ``None`` defers to ``CONFIG.warm_start``.
    * ``memory_cache`` — consult/populate the in-process verdict memo.
    * ``disk_cache`` — consult/populate the persistent store under
      ``.repro_cache/``.  ``None`` defers to ``CONFIG.disk_cache``.
    * ``port_limit`` / ``id_order_types`` / ``include_all_accepted_labelings``
      / ``labeling_limit`` — the Lemma 3.1 enumeration bounds; part of
      the plan because they define the sweep's identity for every cache
      tier.
    * ``symmetry`` — the symmetry-reduction mode: ``"off"`` (legacy
      edge-subset enumeration, no pruning), ``"on"`` (orderly generation
      + automorphism-orbit pruning), or ``"auto"`` (orderly generation;
      pruning only for anonymous schemes).  ``None`` defers to
      ``CONFIG.symmetry``.  Suppressed instances are folded back into
      ``Provenance.instances_scanned``, so full-sweep provenance is
      regime-independent; when pruning is effective the sweep's disk
      identity is tagged so pre-symmetry cache entries are never misread.
    * ``generation_kernel`` — the generation-side kernel mode (``"auto"``
      | ``"on"`` | ``"off"``): whether orderly generation and its
      emission labeling run the batched canonicalization searches of
      :mod:`repro.kernel.generate` instead of the scalar DFS.  ``None``
      defers to ``CONFIG.generation_kernel``; ``"on"`` is rejected at
      resolve time when numpy is missing.  Levels and emission streams
      are byte-identical either way, so this knob never enters a cache
      identity.
    * ``kernel_labeling_limit`` — an elevated admission limit for the
      exhaustive unanimity pass, honored only where the batch kernel
      actually evaluates the labelings (``vectorized`` backend *and*
      :func:`repro.kernel.batch.kernel_supports` for the base) — the
      block-streamed kernel can afford spaces the scalar loop must
      refuse.  ``None`` (the default) leaves every route at
      ``labeling_limit``, so scalar-route behavior is unchanged; when it
      admits new spaces it changes sweep content, so a set value is part
      of the sweep's cache identity (resolve normalizes it to ``None``
      on non-vectorized backends and when it does not exceed
      ``labeling_limit``, where it is a no-op).
    * ``graph_family`` — a registered named graph family
      (:data:`repro.graphs.families.GRAPH_FAMILIES`) restricting the
      sweep's graph enumeration; ``"all"`` (the default) is the full
      Lemma 3.1 sweep.  The filter composes with the scheme's own
      ``is_yes_instance`` check.  Part of every cache identity; the disk
      key records it only when non-default, so pre-campaign
      ``.repro_cache/`` entries keep their content addresses.
    * ``alphabet_limit`` — cap the exhaustive unanimity pass to the
      first ``alphabet_limit`` letters of the scheme's certificate
      alphabet (the campaign layer's alphabet-size axis).  ``None`` (the
      default) uses the full alphabet.  Changes sweep content, so a set
      value is part of every cache identity (disk key: only when set).
    * ``sharding`` — the sharded-generation mode (``"auto"`` | ``"on"``
      | ``"off"``; ``None`` defers to ``CONFIG.sharding``): whether the
      sweep splits the canonical-augmentation tree into subtree work
      units drained by a work-stealing process pool
      (:mod:`repro.shard`).  The merged emission stream, accounts, and
      fingerprints are byte-identical to the serial walk, so this knob
      never enters a cache identity.  ``"auto"`` engages only where it
      can pay off (effective ``workers > 1``, full sweep, orderly
      generation); ``"on"`` forces the sharded path — even single-
      process, the deterministic test route — and is rejected at
      resolve time with ``symmetry="off"`` (the legacy edge-subset walk
      has no augmentation tree to shard); ``"off"`` disables it.
    * ``shard_depth`` — the level at which the augmentation tree is
      split (``None`` defers to ``CONFIG.shard_depth``).  Pure
      granularity: unobservable in every output.
    """

    backend: str = BACKEND_AUTO
    workers: int | None = None
    early_exit: bool = True
    warm_start: bool | None = None
    memory_cache: bool = True
    disk_cache: bool | None = None
    port_limit: int = 64
    id_order_types: bool = False
    include_all_accepted_labelings: bool = True
    labeling_limit: int = 20_000
    symmetry: str | None = None
    generation_kernel: str | None = None
    kernel_labeling_limit: int | None = None
    graph_family: str = "all"
    alphabet_limit: int | None = None
    sharding: str | None = None
    shard_depth: int | None = None

    @property
    def is_resolved(self) -> bool:
        return (
            self.backend != BACKEND_AUTO
            and self.workers is not None
            and self.warm_start is not None
            and self.disk_cache is not None
            and self.symmetry is not None
            and self.generation_kernel is not None
            and self.sharding is not None
            and self.shard_depth is not None
        )

    def resolve(self, config: PerfConfig | None = None) -> "ExecutionPlan":
        """Fill every ``None``/``auto`` field from *config* (default: the
        global :data:`~repro.perf.config.CONFIG`).

        The materialized backend is normalized to ``early_exit=False``
        and ``warm_start=False`` — it always scans the full enumeration —
        so equivalent plans share one cache identity.
        """
        config = config if config is not None else CONFIG
        backend = self.backend
        if backend == BACKEND_AUTO:
            if config.streaming:
                from ..kernel import kernel_available  # noqa: PLC0415

                backend = (
                    BACKEND_VECTORIZED if kernel_available() else BACKEND_STREAMING
                )
            else:
                backend = BACKEND_MATERIALIZED
        if backend not in (BACKEND_MATERIALIZED, BACKEND_STREAMING):
            from .backends import get_backend  # noqa: PLC0415

            get_backend(backend)  # raises for unknown or unavailable names
        workers = self.workers if self.workers is not None else config.workers
        warm = self.warm_start if self.warm_start is not None else config.warm_start
        disk = self.disk_cache if self.disk_cache is not None else config.disk_cache
        symmetry = self.symmetry if self.symmetry is not None else config.symmetry
        if symmetry not in ("auto", "on", "off"):
            raise ValueError(
                f"unknown symmetry mode {symmetry!r}; known: auto, on, off"
            )
        generation = (
            self.generation_kernel
            if self.generation_kernel is not None
            else config.generation_kernel
        )
        if generation not in ("auto", "on", "off"):
            raise ValueError(
                f"unknown generation_kernel mode {generation!r}; "
                "known: auto, on, off"
            )
        if generation == "on":
            from ..kernel import kernel_available  # noqa: PLC0415

            if not kernel_available():
                raise ValueError(
                    "generation_kernel='on' requires numpy (install it via "
                    "`pip install -e .[fast]`; if REPRO_DISABLE_NUMPY is "
                    "set, unset it) — use 'auto' for a silent fallback"
                )
        raised_limit = self.kernel_labeling_limit
        if raised_limit is not None:
            if raised_limit <= 0:
                raise ValueError(
                    f"kernel_labeling_limit must be positive, got {raised_limit}"
                )
            # A raised limit is a no-op off the kernel route or at/below
            # the base limit; normalize those plans to one cache identity.
            if backend != BACKEND_VECTORIZED or raised_limit <= self.labeling_limit:
                raised_limit = None
        from ..graphs.families import graph_family_predicate  # noqa: PLC0415

        graph_family_predicate(self.graph_family)  # raises for unknown names
        if self.alphabet_limit is not None and self.alphabet_limit < 1:
            raise ValueError(
                f"alphabet_limit must be positive, got {self.alphabet_limit}"
            )
        early_exit = self.early_exit
        if backend == BACKEND_MATERIALIZED:
            early_exit = False
            warm = False
        sharding = self.sharding if self.sharding is not None else config.sharding
        if sharding not in ("auto", "on", "off"):
            raise ValueError(
                f"unknown sharding mode {sharding!r}; known: auto, on, off"
            )
        if sharding == "on" and symmetry == "off":
            raise ValueError(
                "sharding='on' requires orderly generation — the legacy "
                "edge-subset walk selected by symmetry='off' has no "
                "augmentation tree to shard (use symmetry='auto'/'on', "
                "or sharding='auto' for a silent fallback)"
            )
        if sharding == "auto" and symmetry == "off":
            sharding = "off"
        shard_depth = (
            self.shard_depth if self.shard_depth is not None else config.shard_depth
        )
        if shard_depth < 1:
            raise ValueError(f"shard_depth must be >= 1, got {shard_depth}")
        # CI multi-core runners force parallelism past a conservative
        # autodetection; an explicit plan.workers is never overridden.
        if self.workers is None:
            from ..perf.config import forced_workers  # noqa: PLC0415

            forced = forced_workers()
            if forced is not None:
                workers = forced
        return replace(
            self,
            backend=backend,
            workers=workers,
            early_exit=early_exit,
            warm_start=warm,
            disk_cache=disk,
            symmetry=symmetry,
            generation_kernel=generation,
            kernel_labeling_limit=raised_limit,
            sharding=sharding,
            shard_depth=shard_depth,
        )

    def describe(self) -> str:
        """One-line human summary (CLI provenance output)."""
        tiers = [
            name
            for name, on in (("memory", self.memory_cache), ("disk", self.disk_cache))
            if on
        ]
        workers = "auto" if self.workers is None else (self.workers or "serial")
        symmetry = "auto" if self.symmetry is None else self.symmetry
        generation = (
            "auto" if self.generation_kernel is None else self.generation_kernel
        )
        text = (
            f"backend={self.backend} workers={workers} "
            f"early_exit={self.early_exit} warm_start={self.warm_start} "
            f"cache={'+'.join(tiers) if tiers else 'none'} "
            f"symmetry={symmetry} generation_kernel={generation}"
        )
        if self.kernel_labeling_limit is not None:
            text += f" kernel_labeling_limit={self.kernel_labeling_limit}"
        if self.graph_family != "all":
            text += f" graph_family={self.graph_family}"
        if self.alphabet_limit is not None:
            text += f" alphabet_limit={self.alphabet_limit}"
        if self.sharding not in (None, "off"):
            depth = "auto" if self.shard_depth is None else self.shard_depth
            text += f" sharding={self.sharding} shard_depth={depth}"
        return text


def resolve_plan(
    streaming: bool | None = None,
    backend: str | None = None,
    workers: int | None = None,
    early_exit: bool = True,
    warm_start: bool | None = None,
    memory_cache: bool = True,
    disk_cache: bool | None = None,
    port_limit: int = 64,
    id_order_types: bool = False,
    include_all_accepted_labelings: bool = True,
    labeling_limit: int = 20_000,
    symmetry: str | None = None,
    generation_kernel: str | None = None,
    kernel_labeling_limit: int | None = None,
    graph_family: str = "all",
    alphabet_limit: int | None = None,
    sharding: str | None = None,
    shard_depth: int | None = None,
    config: PerfConfig | None = None,
) -> ExecutionPlan:
    """The plan resolver: legacy keyword vocabulary → resolved plan.

    This is the only place the streaming-vs-materialized routing decision
    is made.  ``streaming=None`` defers to ``config.streaming`` (the
    historical behavior of ``hiding_verdict_up_to``); every other
    ``None`` likewise falls back to the config knob.  *backend* names a
    registered backend directly (the CLI's ``--backend``); it is
    mutually exclusive with the legacy *streaming* keyword.
    """
    if backend is not None:
        if streaming is not None:
            raise ValueError(
                "resolve_plan: pass either backend= or streaming=, not both"
            )
    elif streaming is None:
        backend = BACKEND_AUTO
    else:
        backend = BACKEND_STREAMING if streaming else BACKEND_MATERIALIZED
    return ExecutionPlan(
        backend=backend,
        workers=workers,
        early_exit=early_exit,
        warm_start=warm_start,
        memory_cache=memory_cache,
        disk_cache=disk_cache,
        port_limit=port_limit,
        id_order_types=id_order_types,
        include_all_accepted_labelings=include_all_accepted_labelings,
        labeling_limit=labeling_limit,
        symmetry=symmetry,
        generation_kernel=generation_kernel,
        kernel_labeling_limit=kernel_labeling_limit,
        graph_family=graph_family,
        alphabet_limit=alphabet_limit,
        sharding=sharding,
        shard_depth=shard_depth,
    ).resolve(config)
