"""The unified verdict envelope returned by :func:`repro.engine.decide_hiding`.

A :class:`Verdict` carries the decision (*is the scheme hiding up to
``n``?*), the canonical witness, the scanned (sub-)graph of ``V(D, n)``,
and a :class:`Provenance` record saying how the answer was produced —
which backend ran, how much was scanned, which cache tier served it, and
how long it took.  The legacy
:class:`~repro.neighborhood.hiding.HidingVerdict` stays available as
``verdict.legacy`` so every pre-engine consumer keeps working unchanged.

Canonical witness
-----------------
``Verdict.witness`` (for ``k = 2`` hiding verdicts) is always the
*stream-order first* odd closed walk: the walk closed by the first edge
of ``V(D, n)``, in the builders' deterministic event order, that creates
an odd cycle.  Both backends report this same walk — the streaming
backend finds it by construction, and the materialized backend runs the
same incremental detector alongside the full build — so the witness is
byte-identical across every plan (backend × workers × cache tiers).
``verdict.legacy.odd_cycle`` keeps each backend's historical derivation
(BFS bipartition walk for materialized sweeps), which existing tests and
figures pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..local.views import View
from ..neighborhood.hiding import HidingVerdict
from ..neighborhood.ngraph import NeighborhoodGraph
from ..obs.trace import format_seconds


@dataclass(frozen=True)
class Provenance:
    """How a verdict was produced (per fresh compute or disk reload; a
    memory-tier hit returns the originally produced envelope as-is, so
    identity — not provenance — tells you about memo hits).

    ``trace_id`` links the verdict to the run report / span tree of the
    traced run that produced it (``None`` for untraced runs).
    """

    backend: str
    n: int
    workers: int
    early_exit: bool
    instances_scanned: int
    views: int
    edges: int
    memory_cache_hit: bool = False
    disk_cache_hit: bool = False
    warm_started: bool = False
    warm_witness_hit: bool = False
    #: True when automorphism-orbit pruning ran: ``instances_scanned``
    #: then includes the suppressed orbit mates (multiplied back in), not
    #: only the instances physically decided.
    symmetry_pruned: bool = False
    #: Inner-loop evaluator the sweep ran with: ``"batch"`` for the
    #: vectorized numpy kernel, ``None`` for the scalar loops (and for
    #: disk reloads, which scan nothing).
    kernel: str | None = None
    #: Per-op throughput gauges of the producing sweep (``None`` when
    #: the corresponding op never ran — a scalar sweep evaluates no
    #: kernel labelings, a generation-warm sweep canonicalizes nothing).
    #: Mirrored into the context metrics registry as gauges of the same
    #: names, so single-core hosts track per-op perf trajectory.
    labelings_per_sec: float | None = None
    canonicalizations_per_sec: float | None = None
    #: Sharded-sweep gauges (``None`` when the sweep ran unsharded):
    #: subtree work units executed/adopted, shards a pool worker pulled
    #: beyond its fair share (the work-stealing smoothing of skewed
    #: subtrees), and shard-stage throughput.  Mirrored into the context
    #: metrics registry, so the bench sentinel tracks parallel regimes.
    shard_count: int | None = None
    steal_count: int | None = None
    shards_per_sec: float | None = None
    wall_time_s: float = 0.0
    trace_id: str | None = None

    def summary(self) -> str:
        source = "computed"
        if self.disk_cache_hit:
            source = "disk cache"
        elif self.warm_witness_hit:
            source = "warm-start witness"
        elif self.warm_started:
            source = "warm-started sweep"
        # Instant answers (warm-witness shortcut, sub-clock reloads) used
        # to render as a misleading "0.0 ms"; format_seconds drops to µs
        # for sub-millisecond times and prints an honest "0 s" for zero.
        text = (
            f"{self.backend} backend ({source}), workers={self.workers}, "
            f"{self.instances_scanned} instances scanned, "
            f"{self.views} views / {self.edges} edges, "
            f"{format_seconds(self.wall_time_s)}"
        )
        if self.kernel is not None:
            text += f", kernel={self.kernel}"
        if self.labelings_per_sec is not None:
            text += f", {self.labelings_per_sec:,.0f} labelings/s"
        if self.canonicalizations_per_sec is not None:
            text += f", {self.canonicalizations_per_sec:,.0f} canon/s"
        if self.shard_count is not None:
            text += f", {self.shard_count} shards"
            if self.steal_count:
                text += f" ({self.steal_count} stolen)"
            if self.shards_per_sec is not None:
                text += f", {self.shards_per_sec:,.1f} shards/s"
        if self.trace_id is not None:
            text += f", trace {self.trace_id}"
        return text


@dataclass(frozen=True, eq=False)
class Verdict:
    """Unified hiding verdict: decision + witness + graph + provenance.

    Equality is identity (``eq=False``): the memo tier returns the same
    object for repeated identical sweeps, and content comparison is done
    explicitly via :meth:`decision_fingerprint`.
    """

    k: int
    hiding: bool | None
    #: Canonical stream-order odd closed walk (``k = 2`` hiding verdicts).
    witness: tuple[View, ...] | None
    coloring: dict[int, int] | None
    ngraph: NeighborhoodGraph
    provenance: Provenance
    #: The backend's historical envelope, for pre-engine consumers.
    legacy: HidingVerdict = field(repr=False)

    def summary(self) -> str:
        return self.legacy.summary()

    def decision_fingerprint(self) -> bytes:
        """Canonical bytes of the *decision content* — identical across
        every plan that answers the same question.

        Covers the flag, the canonical witness walk, and (for conclusive
        non-hiding sweeps, where every backend materializes the complete
        graph) the full view/edge/coloring content.  Excludes provenance
        and, on hiding verdicts, graph coverage — an early-exit sweep
        soundly stops at a prefix of ``V(D, n)``.
        """
        from ..perf.persist import encode_view  # noqa: PLC0415

        payload: dict = {"k": self.k, "hiding": self.hiding}
        payload["witness"] = (
            None if self.witness is None else [encode_view(v) for v in self.witness]
        )
        if self.hiding is False:
            payload["views"] = [encode_view(v) for v in self.ngraph.views]
            payload["edges"] = sorted(self.ngraph.edges)
            payload["coloring"] = (
                None
                if self.coloring is None
                else sorted(self.coloring.items())
            )
        return json.dumps(payload, sort_keys=True, ensure_ascii=False).encode("utf-8")
