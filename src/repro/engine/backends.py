"""Engine backends: the interchangeable ways to decide Lemma 3.2.

A backend answers one question — *is* ``V(D, n)`` *k-colorable?* — under
the contract that the ``hiding`` flag, the canonical stream-order
witness, and (on conclusive non-hiding sweeps) the complete graph and
coloring are byte-identical across backends, worker counts, and cache
tiers.  Three ship today:

* ``materialized`` — build all of ``V(D, n)`` (serial or process-pool),
  then decide: BFS bipartition / DSATUR coloring on the finished graph.
  The historical pipeline; its legacy envelope keeps the BFS witness
  walk the figure experiments pin.  An incremental parity detector rides
  along (``k = 2``) purely to report the canonical stream witness.
* ``streaming`` — the fused early-exit engine of
  :mod:`repro.neighborhood.streaming`: incremental decision per builder
  event, optional cross-``n`` warm start, stop at the first witness.
* ``vectorized`` — the streaming engine with the numpy batch kernel of
  :mod:`repro.kernel` evaluating the unanimity sweeps block-wise;
  capability-gated on numpy (see :class:`VectorizedBackend`).

Registering a new backend is one class + one :func:`register_backend`
call — sharded sweeps, async workers, or remote executors plug in here
without touching any call site.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

from ..certification.lcp import LCP
from ..graphs.families import warm_graph_families
from ..neighborhood.aviews import (
    symmetry_pruning_effective,
    yes_instances_between,
    yes_instances_up_to,
)
from ..neighborhood.hiding import HidingVerdict, classic_verdict
from ..neighborhood.ngraph import build_neighborhood_graph_auto
from ..obs.logs import get_logger
from ..obs.progress import counting_instances
from ..perf.config import CONFIG
from ..perf.stats import GLOBAL_STATS
from ..kernel import KERNEL_BATCH, kernel_available
from ..symmetry.prune import SymmetryAccount
from .context import RunContext
from .plan import ExecutionPlan
from .verdict import Provenance, Verdict

log = get_logger("engine.backends")

#: Engine revision; folded into memo, warm-state, and disk keys so
#: algorithmic changes can never resurrect stale state.  Value 1 keeps
#: pre-engine ``.repro_cache/`` entries readable.
ENGINE_VERSION = 1


class Backend:
    """One way to run a hiding sweep.  Subclasses override :meth:`run`;
    :meth:`shortcut` may answer from backend-private state (the
    streaming warm-start witness) before any cache tier is consulted.
    :meth:`available` gates capability-dependent backends (the
    vectorized kernel backend needs numpy): unavailable backends stay
    registered but are hidden from :func:`available_backends` and
    rejected by :func:`get_backend` with an actionable message."""

    name: str = "?"

    def available(self) -> bool:
        return True

    def unavailable_reason(self) -> str | None:
        return None

    def shortcut(
        self, lcp: LCP, n: int, plan: ExecutionPlan, ctx: RunContext
    ) -> Verdict | None:
        return None

    def run(self, lcp: LCP, n: int, plan: ExecutionPlan, ctx: RunContext) -> Verdict:
        raise NotImplementedError


_BACKENDS: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add *backend* to the engine's dispatch table (name-keyed)."""
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    backend = _BACKENDS.get(name)
    if backend is None:
        raise ValueError(
            f"unknown backend {name!r}; known: {', '.join(available_backends())}"
        )
    if not backend.available():
        raise ValueError(
            f"backend {name!r} is unavailable: {backend.unavailable_reason()}"
        )
    return backend


def available_backends() -> list[str]:
    """Names of the backends that can run in this process, in
    registration order.  Capability-gated backends (``vectorized``)
    drop out when their dependency is missing, so surfaces deriving
    choices from this list (the CLI's ``--backend``) stay honest."""
    return [name for name, backend in _BACKENDS.items() if backend.available()]


# ----------------------------------------------------------------------
# Sweep identity keys (shared by every cache tier)
# ----------------------------------------------------------------------


def _symmetry_effective(lcp: LCP, plan: ExecutionPlan) -> bool:
    """Whether the resolved plan's symmetry mode turns orbit pruning on
    for this scheme (generation mode alone never changes sweep content)."""
    return symmetry_pruning_effective(lcp, plan.symmetry or "off")


def family_key(lcp: LCP, plan: ExecutionPlan) -> tuple:
    """The sweep identity *without* ``n``: one key per (scheme, decoder,
    enumeration bounds, backend semantics) family.  Worker count is
    deliberately absent — verdicts are byte-identical for any.  Orbit
    pruning is part of the identity (early-exit counts may differ between
    regimes); the orderly-vs-legacy generation mode and the generation
    kernel are not (byte-identical streams).  A raised
    ``kernel_labeling_limit`` *is* part of the identity — it admits
    labeling spaces the base limit refuses, changing sweep content
    (resolve already normalized it to ``None`` wherever it is a no-op)."""
    return (
        ENGINE_VERSION,
        plan.backend,
        type(lcp).__name__,
        lcp.name,
        lcp.decoder.name,
        lcp.k,
        lcp.radius,
        lcp.anonymous,
        plan.port_limit,
        plan.id_order_types,
        plan.include_all_accepted_labelings,
        plan.labeling_limit,
        plan.early_exit,
        _symmetry_effective(lcp, plan),
        plan.kernel_labeling_limit,
        plan.graph_family,
        plan.alphabet_limit,
    )


def memory_key(lcp: LCP, n: int, plan: ExecutionPlan) -> tuple:
    return family_key(lcp, plan) + (n,)


def disk_key(lcp: LCP, n: int, plan: ExecutionPlan) -> dict:
    """Readable persistent-store key.  For streaming sweeps this is the
    exact pre-engine layout (same fields, same values), so existing
    ``.repro_cache/`` entries keep their content addresses."""
    key = {
        "engine_version": ENGINE_VERSION,
        "lcp_type": type(lcp).__name__,
        "lcp_name": lcp.name,
        "decoder": lcp.decoder.name,
        "k": lcp.k,
        "radius": lcp.radius,
        "anonymous": lcp.anonymous,
        "n": n,
        "port_limit": plan.port_limit,
        "id_order_types": plan.id_order_types,
        "include_all_accepted_labelings": plan.include_all_accepted_labelings,
        "labeling_limit": plan.labeling_limit,
        "early_exit": plan.early_exit,
    }
    if plan.backend != "streaming":
        key["backend"] = plan.backend
    # Only when orbit pruning is effective: pre-symmetry entries keep
    # their content addresses and are never misread by pruned sweeps
    # (whose early-exit instance counts can legitimately differ).
    if _symmetry_effective(lcp, plan):
        key["symmetry"] = "on"
    # Only when set (vectorized route, above the base limit): the raised
    # admission limit changes sweep content, and pre-existing entries
    # keep their addresses when it is off.
    if plan.kernel_labeling_limit is not None:
        key["kernel_labeling_limit"] = plan.kernel_labeling_limit
    # Campaign axes, only when off their defaults: the default cell —
    # full family, full alphabet — keeps the pre-campaign content
    # address byte-for-byte.
    if plan.graph_family != "all":
        key["graph_family"] = plan.graph_family
    if plan.alphabet_limit is not None:
        key["alphabet_limit"] = plan.alphabet_limit
    return key


def _with_progress(instances, lcp: LCP, n: int, ctx: RunContext):
    """Wrap an instance stream with ``instances_scanned`` progress
    deltas — only when someone is listening, so an unobserved sweep
    keeps the raw generator (and its exact early-exit behavior; the
    wrapper yields the stream unchanged either way)."""
    if not ctx.progress.active:
        return instances
    return counting_instances(
        instances,
        ctx.progress,
        scheme=lcp.name,
        n=n,
        trace_id=ctx.tracer.trace_id if ctx.tracer.active else None,
    )


def _enumeration_bounds(plan: ExecutionPlan) -> dict:
    return {
        "port_limit": plan.port_limit,
        "id_order_types": plan.id_order_types,
        "include_all_accepted_labelings": plan.include_all_accepted_labelings,
        "labeling_limit": plan.labeling_limit,
        "kernel_labeling_limit": plan.kernel_labeling_limit,
        "family": plan.graph_family,
        "alphabet_limit": plan.alphabet_limit,
    }


def _envelope(
    lcp: LCP,
    n: int,
    plan: ExecutionPlan,
    legacy: HidingVerdict,
    witness,
    elapsed: float,
    ctx: RunContext | None = None,
    **flags,
) -> Verdict:
    g = legacy.ngraph
    provenance = Provenance(
        backend=plan.backend,
        n=n,
        workers=plan.workers or 0,
        early_exit=plan.early_exit,
        instances_scanned=g.instances_scanned,
        views=g.order,
        edges=g.size,
        wall_time_s=elapsed,
        trace_id=(
            ctx.tracer.trace_id if ctx is not None and ctx.tracer.active else None
        ),
        **flags,
    )
    return Verdict(
        k=legacy.k,
        hiding=legacy.hiding,
        witness=witness,
        coloring=legacy.coloring,
        ngraph=g,
        provenance=provenance,
        legacy=legacy,
    )


def _apply_symmetry_account(ngraph, account: SymmetryAccount | None, ctx: RunContext):
    """Fold orbit-pruning suppressions back into the sweep's counts.

    ``Provenance.instances_scanned`` and the ``instances_scanned`` stats
    counter move in lockstep — the run report's consistency block checks
    them for exact agreement.  Must run before the envelope is built and
    before the engine state is parked for warm starts."""
    if account is None:
        return
    with ctx.tracer.span(
        "symmetry:orbit-prune",
        bases_pruned=account.bases_pruned,
        labelings_pruned=account.labelings_pruned,
        instances_suppressed=account.instances_suppressed,
    ):
        if account.instances_suppressed:
            ngraph.instances_scanned += account.instances_suppressed
            ctx.stats.incr("instances_scanned", account.instances_suppressed)
            ctx.stats.incr(
                "symmetry_instances_suppressed", account.instances_suppressed
            )
        if account.labelings_total:
            ctx.stats.incr("symmetry_labelings_total", account.labelings_total)
        if account.labelings_pruned:
            ctx.stats.incr("symmetry_labelings_pruned", account.labelings_pruned)
        if account.bases_pruned:
            ctx.stats.incr("symmetry_bases_pruned", account.bases_pruned)


def _sharding_effective(lcp: LCP, plan: ExecutionPlan, n: int) -> bool:
    """Whether this sweep takes the sharded route (lazy import keeps the
    shard layer out of the engine's import graph until it is used)."""
    from ..shard import sharding_effective  # noqa: PLC0415

    return sharding_effective(lcp, plan, n)


def _run_sharded(
    lcp: LCP,
    n: int,
    plan: ExecutionPlan,
    ctx: RunContext,
    *,
    symmetry: str,
    consumer,
    into,
    account,
    kernel: str | None,
    flags: dict,
    lo: int = 0,
):
    """Run the sharded sweep; fold its outcome into the provenance
    *flags* dict; return the assembled neighborhood graph.  The sweep
    key is the backend's own persistent identity, so shard checkpoints
    can never cross sweeps."""
    from ..shard import run_sharded_sweep  # noqa: PLC0415

    outcome = run_sharded_sweep(
        lcp,
        n,
        plan,
        ctx,
        bounds=_enumeration_bounds(plan),
        symmetry=symmetry,
        consumer=consumer,
        into=into,
        account=account,
        lo=lo,
        kernel=kernel,
        sweep_key=disk_key(lcp, n, plan),
    )
    flags["shard_count"] = outcome.shard_count
    flags["steal_count"] = outcome.steal_count
    if outcome.shards_per_sec is not None:
        flags["shards_per_sec"] = outcome.shards_per_sec
    return outcome.ngraph


class _ThroughputMeter:
    """Per-op throughput of one sweep: kernel labelings evaluated per
    second and canonical forms computed per second.

    Labelings are counted on the context stats (the batch kernel's
    ``kernel_labelings``); canonicalizations on :data:`GLOBAL_STATS`,
    where the orderly generator records them regardless of which stats
    handle the engine threads (generation is process-memoized, so a
    warm sweep honestly reports none).  The computed gauges land in the
    context metrics registry and in ``Provenance`` — single-core hosts
    track per-op perf trajectory even when wall-clock comparisons are
    noisy."""

    def __init__(self, ctx: RunContext) -> None:
        self.ctx = ctx
        self.labelings = ctx.stats.get("kernel_labelings")
        self.canonicalizations = GLOBAL_STATS.get("canonicalizations")

    def flags(self, elapsed: float) -> dict:
        labelings = self.ctx.stats.get("kernel_labelings") - self.labelings
        canon = GLOBAL_STATS.get("canonicalizations") - self.canonicalizations
        out: dict = {}
        if elapsed > 0.0:
            if labelings:
                out["labelings_per_sec"] = labelings / elapsed
            if canon:
                out["canonicalizations_per_sec"] = canon / elapsed
        metrics = self.ctx.stats.metrics
        if metrics is not None:
            for name, value in out.items():
                metrics.set_gauge(name, value)
        return out


# ----------------------------------------------------------------------
# Materialized backend
# ----------------------------------------------------------------------


class MaterializedBackend(Backend):
    """Full build, then decide — the classic Lemma 3.2 pipeline."""

    name = "materialized"

    def run(self, lcp: LCP, n: int, plan: ExecutionPlan, ctx: RunContext) -> Verdict:
        from ..neighborhood.streaming import StreamingHidingEngine  # noqa: PLC0415

        start = time.perf_counter()
        pruned = _symmetry_effective(lcp, plan)
        account = SymmetryAccount() if pruned else None
        sharded = _sharding_effective(lcp, plan, n)
        meter = _ThroughputMeter(ctx)
        with CONFIG.overridden(
            symmetry=plan.symmetry, generation_kernel=plan.generation_kernel
        ):
            with ctx.tracer.span("sweep", n=n, sharded=sharded) as sweep:
                with ctx.tracer.span(
                    "symmetry:generate", n=n, mode=plan.symmetry
                ) as gen:
                    # Sharded sweeps must not pre-generate past the shard
                    # depth: the deeper levels are exactly the work the
                    # subtree shards expand in parallel.
                    gen.set_attributes(
                        sizes_warmed=warm_graph_families(
                            0, min(plan.shard_depth, n) if sharded else n
                        ),
                        deferred=sharded,
                    )
                # The parity detector rides along (k = 2, near-free union-find)
                # so this backend reports the same canonical stream witness as
                # the streaming one; it never stops the scan (early_exit=False).
                tracker = None
                into = None
                if lcp.k == 2:
                    tracker = StreamingHidingEngine(
                        lcp.k,
                        lcp.radius,
                        not lcp.anonymous,
                        early_exit=False,
                        stats=ctx.stats,
                    )
                    into = tracker.ngraph
                shard_flags: dict = {}
                if sharded:
                    ngraph = _run_sharded(
                        lcp,
                        n,
                        plan,
                        ctx,
                        symmetry=plan.symmetry if pruned else "off",
                        consumer=tracker,
                        into=into,
                        account=account,
                        kernel=None,
                        flags=shard_flags,
                    )
                else:
                    instances = _with_progress(
                        yes_instances_up_to(
                            lcp,
                            n,
                            **_enumeration_bounds(plan),
                            symmetry=plan.symmetry if pruned else "off",
                            account=account,
                        ),
                        lcp,
                        n,
                        ctx,
                    )
                    ngraph = build_neighborhood_graph_auto(
                        lcp,
                        instances,
                        workers=plan.workers,
                        stats=ctx.stats,
                        consumer=tracker,
                        into=into,
                        tracer=ctx.tracer,
                    )
                _apply_symmetry_account(ngraph, account, ctx)
                sweep.set_attributes(
                    instances_scanned=ngraph.instances_scanned,
                    views=ngraph.order,
                    edges=ngraph.size,
                )
        with ctx.tracer.span("decide", method="classic"):
            legacy = classic_verdict(lcp, ngraph, exhaustive=True)
        witness = tracker.odd_cycle_views() if tracker is not None else None
        elapsed = time.perf_counter() - start
        return _envelope(
            lcp,
            n,
            plan,
            legacy,
            witness,
            elapsed,
            ctx,
            symmetry_pruned=pruned,
            **shard_flags,
            **meter.flags(elapsed),
        )


# ----------------------------------------------------------------------
# Streaming backend (early exit, warm starts)
# ----------------------------------------------------------------------


@dataclass
class _SweepState:
    """Last finished streaming sweep for one sweep family."""

    n: int
    engine: object  # StreamingHidingEngine


#: Warm-start states per family key (without ``n``); process-wide like
#: the memo tiers, cleared via :func:`clear_warm_states`.
_WARM_STATES: dict[tuple, _SweepState] = {}


def clear_warm_states() -> None:
    _WARM_STATES.clear()


class StreamingBackend(Backend):
    """Fused incremental decision with early exit and warm starts."""

    name = "streaming"
    #: Inner-loop evaluator for the unanimity sweeps (``None`` = scalar);
    #: the vectorized subclass sets ``"batch"``.
    kernel: str | None = None

    @contextmanager
    def _kernel_span(self, ctx: RunContext):
        """Wrap the build in a ``kernel:<name>`` span whose attributes
        report the batch counters the sweep accumulated (no-op for the
        scalar streaming backend)."""
        if self.kernel is None:
            yield None
            return
        before_batches = ctx.stats.get("kernel_batches")
        before_labelings = ctx.stats.get("kernel_labelings")
        with ctx.tracer.span(
            f"kernel:{self.kernel}", block_size=CONFIG.kernel_block_size
        ) as span:
            try:
                yield span
            finally:
                span.set_attributes(
                    batches=ctx.stats.get("kernel_batches") - before_batches,
                    labelings=ctx.stats.get("kernel_labelings") - before_labelings,
                )

    def shortcut(
        self, lcp: LCP, n: int, plan: ExecutionPlan, ctx: RunContext
    ) -> Verdict | None:
        """A previously found witness answers every larger sweep
        instantly: ``V(D, m) ⊇ V(D, n)`` for ``m ≥ n`` keeps the odd
        walk intact."""
        if not (plan.warm_start and lcp.anonymous):
            return None
        state = _WARM_STATES.get(family_key(lcp, plan))
        if state is None or state.n > n or not state.engine.witness_found:
            return None
        ctx.stats.incr("warm_witness_hits")
        log.debug(
            "%s: warm-start witness from n=%d answers n=%d", lcp.name, state.n, n
        )
        legacy = state.engine.verdict(exhaustive=True)
        witness = legacy.odd_cycle
        return _envelope(
            lcp,
            n,
            plan,
            legacy,
            witness,
            0.0,
            ctx,
            warm_witness_hit=True,
            symmetry_pruned=_symmetry_effective(lcp, plan),
            kernel=self.kernel,
        )

    def run(self, lcp: LCP, n: int, plan: ExecutionPlan, ctx: RunContext) -> Verdict:
        from ..neighborhood.streaming import StreamingHidingEngine  # noqa: PLC0415

        family = family_key(lcp, plan)
        state = (
            _WARM_STATES.get(family) if plan.warm_start and lcp.anonymous else None
        )
        start = time.perf_counter()
        warm_started = False
        pruned = _symmetry_effective(lcp, plan)
        account = SymmetryAccount() if pruned else None
        symmetry = plan.symmetry if pruned else "off"
        sharded = _sharding_effective(lcp, plan, n)
        shard_flags: dict = {}
        meter = _ThroughputMeter(ctx)
        with CONFIG.overridden(
            symmetry=plan.symmetry, generation_kernel=plan.generation_kernel
        ), ctx.stats.time_stage("streaming_sweep"):
            with ctx.tracer.span(
                "sweep", n=n, early_exit=plan.early_exit, sharded=sharded
            ) as sweep:
                lo = 0
                instances = None
                if state is not None and state.n <= n:
                    ctx.stats.incr("warm_starts")
                    warm_started = True
                    lo = state.n
                    engine = state.engine.clone()
                    engine.stats = ctx.stats
                    with ctx.tracer.span(
                        "symmetry:generate", n=n, mode=plan.symmetry
                    ) as gen:
                        # Early-exit sweeps generate lazily: pre-building
                        # every family would waste the exit.  Sharded
                        # sweeps never pre-generate past the shard depth —
                        # the deeper levels are the shards' parallel work.
                        gen.set_attributes(
                            sizes_warmed=0
                            if plan.early_exit or sharded
                            else warm_graph_families(state.n, n),
                            deferred=plan.early_exit or sharded,
                        )
                    if not sharded:
                        instances = _with_progress(
                            yes_instances_between(
                                lcp,
                                state.n,
                                n,
                                **_enumeration_bounds(plan),
                                symmetry=symmetry,
                                account=account,
                                kernel=self.kernel,
                                stats=ctx.stats,
                            ),
                            lcp,
                            n,
                            ctx,
                        )
                else:
                    engine = StreamingHidingEngine(
                        lcp.k,
                        lcp.radius,
                        not lcp.anonymous,
                        early_exit=plan.early_exit,
                        stats=ctx.stats,
                    )
                    with ctx.tracer.span(
                        "symmetry:generate", n=n, mode=plan.symmetry
                    ) as gen:
                        gen.set_attributes(
                            sizes_warmed=0
                            if plan.early_exit or sharded
                            else warm_graph_families(0, n),
                            deferred=plan.early_exit or sharded,
                        )
                    if not sharded:
                        instances = _with_progress(
                            yes_instances_up_to(
                                lcp,
                                n,
                                **_enumeration_bounds(plan),
                                symmetry=symmetry,
                                account=account,
                                kernel=self.kernel,
                                stats=ctx.stats,
                            ),
                            lcp,
                            n,
                            ctx,
                        )
                with self._kernel_span(ctx):
                    if sharded:
                        _run_sharded(
                            lcp,
                            n,
                            plan,
                            ctx,
                            symmetry=symmetry,
                            consumer=engine,
                            into=engine.ngraph,
                            account=account,
                            kernel=self.kernel,
                            flags=shard_flags,
                            lo=lo,
                        )
                    else:
                        build_neighborhood_graph_auto(
                            lcp,
                            instances,
                            workers=plan.workers,
                            stats=ctx.stats,
                            consumer=engine,
                            into=engine.ngraph,
                            tracer=ctx.tracer,
                        )
                _apply_symmetry_account(engine.ngraph, account, ctx)
                sweep.set_attributes(
                    warm_started=warm_started,
                    witness_found=engine.witness_found,
                    instances_scanned=engine.ngraph.instances_scanned,
                    views=engine.ngraph.order,
                    edges=engine.ngraph.size,
                )
        with ctx.tracer.span("decide", method="incremental"):
            legacy = engine.verdict(exhaustive=True)
        if plan.warm_start and lcp.anonymous:
            _WARM_STATES[family] = _SweepState(n=n, engine=engine)
        elapsed = time.perf_counter() - start
        return _envelope(
            lcp,
            n,
            plan,
            legacy,
            legacy.odd_cycle,
            elapsed,
            ctx,
            warm_started=warm_started,
            symmetry_pruned=pruned,
            kernel=self.kernel,
            **shard_flags,
            **meter.flags(elapsed),
        )


# ----------------------------------------------------------------------
# Vectorized backend (streaming semantics, numpy batch kernel)
# ----------------------------------------------------------------------


class VectorizedBackend(StreamingBackend):
    """Streaming semantics with the numpy batch kernel in the unanimity
    loop (:mod:`repro.kernel`): labelings are materialized block-wise as
    ``(batch, nodes)`` index matrices and decoder acceptance reduces to
    boolean table gathers.  Verdicts, witnesses, ``seen`` sets, and every
    account total at every yield point are identical to ``streaming`` —
    only the inner-loop arithmetic changes — so the plan-equivalence
    suite holds it to the same fingerprints.  Requires numpy; when the
    labeling space of some base cannot be indexed the sweep falls back
    to the scalar loop for that base only."""

    name = "vectorized"
    kernel = KERNEL_BATCH

    def available(self) -> bool:
        return kernel_available()

    def unavailable_reason(self) -> str | None:
        if kernel_available():
            return None
        return (
            "numpy is not importable (install it via `pip install -e .[fast]`; "
            "if REPRO_DISABLE_NUMPY is set, unset it)"
        )


register_backend(MaterializedBackend())
register_backend(StreamingBackend())
register_backend(VectorizedBackend())
