"""Table experiments: certificate sizes, simulator validation, and the
quantified-hiding / erasure-resilience extensions.

The brief announcement has no measured tables; its implicit results
table is the certificate-size column of Section 1.3 (constant / constant
/ ``O(min{Δ², n} + log n)`` / ``O(log n)``), which ``tbl_cert``
regenerates with measured bit counts over an ``n``-sweep.  ``tbl_sim``
validates the message-passing substrate, and the two extension tables
implement the future-work directions named in Sections 1.1–1.2.
"""

from __future__ import annotations

import math

from ..core.degree_one import DegreeOneLCP
from ..core.even_cycle import EvenCycleLCP
from ..core.shatter import ShatterLCP
from ..core.trivial import RevealingLCP
from ..core.universal import UniversalLCP
from ..core.union import UnionLCP
from ..core.watermelon import WatermelonLCP
from ..graphs import (
    cycle_graph,
    caterpillar_graph,
    path_graph,
    spider_graph,
    watermelon_graph,
)
from ..local.instance import Instance
from ..local.simulator import ERASED, simulate_views
from ..local.views import extract_all_views
from .registry import ExperimentResult, register


def _certificate_row(lcp, graph, label):
    instance = Instance.build(graph, id_bound=max(graph.order, 2))
    labeling = lcp.prover.certify(instance)
    bits = lcp.labeling_bits(labeling, instance.n, instance.id_bound)
    return {
        "lcp": lcp.name,
        "graph": label,
        "n": graph.order,
        "max_degree": graph.max_degree(),
        "bits": bits,
        "log2_n": round(math.log2(graph.order), 2),
    }


@register(
    "tbl_cert",
    "Certificate sizes vs the paper's bounds",
    "Section 1.3 (Theorems 1.1, 1.3, 1.4) + Section 1 baseline",
)
def run_tbl_cert() -> ExperimentResult:
    """Measure per-node certificate bits over an ``n``-sweep and check
    each scheme's growth against its claimed bound: constants stay flat,
    the watermelon scheme grows like ``log n``, and the shatter scheme
    is dominated by ``components + log n``."""
    rows = []
    revealing = RevealingLCP()
    degree_one = DegreeOneLCP()
    even_cycle = EvenCycleLCP()
    union = UnionLCP()
    shatter = ShatterLCP()
    watermelon = WatermelonLCP()
    universal = UniversalLCP()

    sizes = [6, 10, 14, 18, 26, 34]
    for n in sizes:
        rows.append(_certificate_row(revealing, path_graph(n), f"P{n}"))
        rows.append(_certificate_row(degree_one, path_graph(n), f"P{n}"))
        rows.append(_certificate_row(even_cycle, cycle_graph(n), f"C{n}"))
        rows.append(_certificate_row(union, path_graph(n), f"P{n}"))
        rows.append(_certificate_row(shatter, path_graph(n), f"P{n}"))
        rows.append(_certificate_row(watermelon, path_graph(n), f"P{n}"))
        rows.append(_certificate_row(universal, path_graph(n), f"P{n}"))
    # Shatter on a high-component graph: the Δ² term in action.
    for legs in (3, 5, 8):
        rows.append(
            _certificate_row(shatter, spider_graph(legs, 2), f"spider({legs},2)")
        )
    # Watermelon with many paths.
    rows.append(_certificate_row(watermelon, watermelon_graph([2] * 6), "melon(2^6)"))
    rows.append(_certificate_row(watermelon, watermelon_graph([4] * 6), "melon(4^6)"))

    by_scheme: dict[str, list[tuple[int, int]]] = {}
    for row in rows:
        by_scheme.setdefault(row["lcp"], []).append((row["n"], row["bits"]))
    constant = lambda pts: len({b for _n, b in pts if _n in sizes}) <= 1  # noqa: E731
    ok = True
    notes = []
    for name in ("RevealingLCP(k=2)", "DegreeOneLCP", "EvenCycleLCP", "UnionLCP"):
        pts = [(n, b) for n, b in by_scheme[name]]
        flat = len({b for _n, b in pts}) == 1
        notes.append(f"{name}: constant-size = {flat}")
        ok = ok and flat
    melon_pts = sorted(by_scheme["WatermelonLCP"])
    melon_growth = melon_pts[-1][1] - melon_pts[0][1]
    melon_log_growth = math.log2(melon_pts[-1][0]) - math.log2(melon_pts[0][0])
    melon_ok = 0 < melon_growth <= 6 * max(1.0, melon_log_growth)
    notes.append(f"WatermelonLCP: grows by {melon_growth} bits over the sweep (O(log n))")
    ok = ok and melon_ok
    # Universal baseline: super-linear (≈ n per-edge terms × log n id bits).
    universal_pts = sorted(
        (n, b) for n, b in by_scheme["UniversalLCP(bipartite)"] if n in sizes
    )
    universal_ok = universal_pts[-1][1] > 4 * universal_pts[0][1]
    notes.append(
        f"UniversalLCP: {universal_pts[0][1]} -> {universal_pts[-1][1]} bits (O(n²) regime)"
    )
    ok = ok and universal_ok
    _ = constant
    return ExperimentResult(
        exp_id="tbl_cert",
        title="Certificate sizes vs the paper's bounds",
        paper_claim="⌈log k⌉ / O(1) / O(1) / O(1) / O(min{Δ²,n}+log n) / "
    "O(log n) / O(n²) bits",
        ok=ok,
        rows=rows,
        notes=notes,
    )


@register(
    "tbl_sim",
    "Message-passing simulator vs direct view extraction",
    "Section 2.2 (model validation)",
)
def run_tbl_sim() -> ExperimentResult:
    """The flooding simulator must reconstruct exactly the views the
    definition prescribes; rows record message complexity per graph and
    radius."""
    rows = []
    ok = True
    cases = [
        ("P8", path_graph(8)),
        ("C10", cycle_graph(10)),
        ("caterpillar(5)", caterpillar_graph(5)),
        ("spider(3,3)", spider_graph(3, 3)),
    ]
    from ..local.async_simulator import simulate_views_async  # noqa: PLC0415

    for name, graph in cases:
        instance = Instance.build(graph)
        for radius in (1, 2, 3):
            simulated, stats = simulate_views(instance, radius)
            direct = extract_all_views(instance, radius)
            match = simulated == direct
            async_views, async_stats = simulate_views_async(
                instance, radius, seed=radius * 31
            )
            async_match = async_views == direct
            ok = ok and match and async_match
            rows.append(
                {
                    "graph": name,
                    "radius": radius,
                    "sync_match": match,
                    "async_match": async_match,
                    "messages": stats.total_messages,
                    "record_units": stats.total_record_units,
                    "async_round_skew": async_stats.max_round_skew,
                }
            )
    return ExperimentResult(
        exp_id="tbl_sim",
        title="Message-passing simulator vs direct view extraction",
        paper_claim="r flooding rounds reconstruct exactly view_r (incl. "
        "invisible boundary edges); asynchrony + α-synchronizer changes nothing",
        ok=ok,
        rows=rows,
    )


@register(
    "tbl_hiding_fraction",
    "Quantified hiding: fraction of nodes whose color leaks",
    "Section 1.1 (future-work direction, made executable)",
)
def run_tbl_hiding_fraction() -> ExperimentResult:
    """How much of the coloring each scheme actually reveals.

    For each scheme, run the *greedy structural extractor* — output a
    color when the certificate plainly contains one, otherwise guess —
    and measure the fraction of nodes whose output is locally consistent.
    The paper's qualitative claims: the degree-one scheme hides the
    coloring at a single node (fraction close to 1), the even-cycle
    scheme hides it everywhere (fraction ~ a coin flip's worth).
    """
    from ..local.views import View  # noqa: PLC0415

    def structural_extract(view: View) -> int:
        label = view.center_label
        if isinstance(label, tuple) and len(label) == 2 and label[0] in ("H1", "H2"):
            label = label[1]
        if label in (0, 1):
            return label
        return 0  # forced guess

    rows = []
    cases = [
        ("degree-one", DegreeOneLCP(), path_graph(9)),
        ("even-cycle", EvenCycleLCP(), cycle_graph(10)),
        ("revealing", RevealingLCP(), path_graph(9)),
    ]
    ok = True
    for name, lcp, graph in cases:
        instance = Instance.build(graph)
        labeling = lcp.prover.certify(instance)
        labeled = instance.with_labeling(labeling)
        views = extract_all_views(labeled, 1, include_ids=False)
        extracted = {v: structural_extract(view) for v, view in views.items()}
        consistent = sum(
            1
            for v in graph.nodes
            if all(extracted[v] != extracted[u] for u in graph.neighbors(v))
        )
        fraction = consistent / graph.order
        rows.append({"lcp": name, "n": graph.order, "consistent_fraction": round(fraction, 3)})
        if name == "revealing" and fraction < 1.0:
            ok = False
        if name == "degree-one" and not 0.5 < fraction < 1.0:
            ok = False
        if name == "even-cycle" and fraction > 0.9:
            ok = False
    return ExperimentResult(
        exp_id="tbl_hiding_fraction",
        title="Quantified hiding: fraction of nodes whose color leaks",
        paper_claim="degree-one hides at one node; even-cycle hides "
        "everywhere; revealing hides nowhere",
        ok=ok,
        rows=rows,
    )


@register(
    "tbl_resilience",
    "Certificate erasure: how verification degrades",
    "Section 1.2 (resilient labeling schemes, contrast experiment)",
)
def run_tbl_resilience() -> ExperimentResult:
    """Erase ``f`` certificates and count rejecting nodes.

    The paper contrasts its soundness-side requirements with resilient
    labeling schemes' completeness-side ones; this experiment quantifies
    the contrast: the paper's schemes are *not* erasure-resilient — a
    single erasure already trips the decoder — while strong soundness
    keeps the accepting remainder 2-colorable throughout.
    """
    from ..graphs.properties import bipartition  # noqa: PLC0415

    rows = []
    ok = True
    cases = [
        ("degree-one", DegreeOneLCP(), path_graph(8)),
        ("even-cycle", EvenCycleLCP(), cycle_graph(8)),
    ]
    for name, lcp, graph in cases:
        instance = Instance.build(graph)
        labeling = lcp.prover.certify(instance)
        labeled = instance.with_labeling(labeling)
        for erased_count in (0, 1, 2):
            erased = set(list(graph.nodes)[:erased_count])
            views, _stats = simulate_views(labeled, 1, include_ids=False, erased_nodes=erased)
            votes = {v: lcp.decoder.decide(view) for v, view in views.items()}
            accepting = {v for v, vote in votes.items() if vote}
            still_bipartite = bipartition(graph.induced_subgraph(accepting)).is_bipartite
            rejecting = graph.order - len(accepting)
            rows.append(
                {
                    "lcp": name,
                    "erased": erased_count,
                    "rejecting_nodes": rejecting,
                    "accepting_still_bipartite": still_bipartite,
                }
            )
            ok = ok and still_bipartite
            if erased_count == 0 and rejecting != 0:
                ok = False
            if erased_count > 0 and rejecting == 0:
                ok = False  # an erasure must be noticed by someone
    notes = [f"erased certificates carry the sentinel {ERASED!r}"]
    return ExperimentResult(
        exp_id="tbl_resilience",
        title="Certificate erasure: how verification degrades",
        paper_claim="(contrast) erasures trip verification immediately, but "
        "strong soundness keeps accepted remainders 2-colorable",
        ok=ok,
        rows=rows,
        notes=notes,
    )
