"""Extension experiments beyond the paper's stated results.

Two executable follow-ups the paper's discussion invites:

* ``ext_chromatic`` — the K > k remark of Section 1.3: an LCP hides a
  K-coloring iff its neighborhood graph is not K-colorable, so
  ``χ(V(D, n))`` measures *how much* coloring structure leaks.  We
  compute it for every scheme: the revealing baseline has χ = 2 (fully
  extractable), and the hiding schemes have χ = 3 — meaning they hide
  2-colorings but still *reveal a 3-coloring*, which is exactly why the
  paper's motivating application (hiding a 3-coloring while certifying
  2-colorability) needs more than these constructions.

* ``ext_decoder_universe`` — an exhaustive slice of Theorem 6.3: every
  port-oblivious anonymous one-round decoder over a single-symbol
  alphabet (decisions depend only on the center's degree, capped) is
  checked for the strong-vs-hiding dichotomy on the class B(Δ, r).
  Unlike the catalog probe of ``thm12``, this covers *all* 2^4 = 16
  decoders of the sub-universe — a tiny but genuinely complete instance
  of the theorem's quantifier.
"""

from __future__ import annotations

from ..certification.decoder import FunctionDecoder
from ..certification.enumeration import EnumerativeLCP
from ..certification.adversary import ExhaustiveAdversary
from ..certification.checkers import check_strong_soundness
from ..core.degree_one import DegreeOneLCP
from ..core.even_cycle import EvenCycleLCP
from ..core.trivial import RevealingLCP
from ..graphs import complete_graph, cycle_graph, is_bipartite, theta_graph
from ..graphs.coloring import chromatic_number
from ..engine import ExecutionPlan, decide_hiding
from ..neighborhood.aviews import labeled_yes_instances
from ..neighborhood.ngraph import build_neighborhood_graph
from .registry import ExperimentResult, register


@register(
    "ext_chromatic",
    "χ(V(D, n)): how much coloring structure each scheme leaks",
    "Section 1.3 remark (hiding K-colorings), extension",
)
def run_ext_chromatic() -> ExperimentResult:
    rows = []
    expectations = {
        "revealing": 2,   # fully extractable
        "degree-one": 3,  # hides 2-colorings, reveals a 3-coloring
        "even-cycle": 3,
    }
    measured = {}
    for name, lcp, n in [
        ("revealing", RevealingLCP(), 4),
        ("degree-one", DegreeOneLCP(), 4),
        ("even-cycle", EvenCycleLCP(), 6),
    ]:
        # χ needs the COMPLETE V(D, n) — the streaming backend's early
        # exit would stop at the first odd cycle and under-count.
        verdict = decide_hiding(lcp, n, ExecutionPlan(backend="materialized"))
        graph = verdict.ngraph.to_graph()
        if graph.has_loop():
            chi = None  # a view adjacent to itself: no finite coloring
        else:
            chi = chromatic_number(graph, max_k=6)
        measured[name] = chi
        rows.append(
            {
                "lcp": name,
                "n": n,
                "V_order": verdict.ngraph.order,
                "chi(V)": chi if chi is not None else "∞ (loop)",
                "hides_2col": chi is None or chi > 2,
                "reveals_3col": chi is not None and chi <= 3,
            }
        )
    ok = True
    notes = []
    if measured["revealing"] != expectations["revealing"]:
        ok = False
    for name in ("degree-one", "even-cycle"):
        chi = measured[name]
        if not (chi is None or chi >= expectations[name]):
            ok = False
        if chi is not None and chi == 3:
            notes.append(
                f"{name}: χ(V) = 3 — a 3-coloring IS extractable, so this "
                "scheme cannot drive the paper's promise-free separation "
                "(that needs a certificate hiding 3-colorings)"
            )
        if chi is None:
            notes.append(
                f"{name}: V has a loop (two adjacent nodes share a view) — "
                "no K-coloring is extractable for any K; the strongest "
                "possible hiding"
            )
    return ExperimentResult(
        exp_id="ext_chromatic",
        title="χ(V(D, n)): how much coloring structure each scheme leaks",
        paper_claim="hiding a K-coloring ⇔ V(D, n) not K-colorable; "
        "non-hiding at K means a K-coloring is extractable",
        ok=ok,
        rows=rows,
        notes=notes,
    )


@register(
    "ext_decoder_universe",
    "Exhaustive dichotomy over a complete decoder sub-universe",
    "Theorem 6.3, extension (complete sub-universe)",
)
def run_ext_decoder_universe() -> ExperimentResult:
    """Every port-oblivious single-symbol one-round decoder is a function
    ``{0, 1, 2, ≥3}-degree → accept/reject`` — 16 decoders in total.
    For each we decide completeness on θ(4,4,6), strong soundness
    (exhaustively — one labeling per graph), and hiding (view collisions
    on the theta instance); the dichotomy must hold for all 16."""
    theta = theta_graph(4, 4, 6)
    no_instances = [complete_graph(3), cycle_graph(5), theta_graph(2, 2, 3)]
    rows = []
    ok = True
    for mask in range(16):
        verdicts = [(mask >> bucket) & 1 == 1 for bucket in range(4)]

        def decide(view, verdicts=verdicts) -> bool:
            return verdicts[min(view.center_degree, 3)]

        lcp = EnumerativeLCP(
            FunctionDecoder(decide, anonymous=True, name=f"deg-table-{mask:04b}"),
            ["c"],
            promise_fn=is_bipartite,
            name=f"deg-table-{mask:04b}",
        )
        try:
            labeled = list(
                labeled_yes_instances(lcp, [theta], port_limit=1, id_bound=theta.order)
            )
        except Exception:
            labeled = []
        complete = bool(labeled)
        hiding = None
        if labeled:
            ngraph = build_neighborhood_graph(lcp, labeled)
            hiding = ngraph.find_odd_cycle() is not None
        strong = check_strong_soundness(
            lcp, no_instances, ExhaustiveAdversary(), port_limit=1
        ).passed
        dichotomy = not (complete and strong and hiding is True)
        ok = ok and dichotomy
        rows.append(
            {
                "decoder": f"deg-table-{mask:04b}",
                "complete_on_theta": complete,
                "hiding": hiding,
                "strong": strong,
                "dichotomy_holds": dichotomy,
            }
        )
    return ExperimentResult(
        exp_id="ext_decoder_universe",
        title="Exhaustive dichotomy over a complete decoder sub-universe",
        paper_claim="no decoder in B(Δ, r) is complete + strongly sound + "
        "hiding (checked for ALL 16 port-oblivious 1-symbol decoders)",
        ok=ok,
        rows=rows,
    )
