"""Theorem experiments: machine checks for Theorems 1.1–1.4, Lemma 3.2,
and the Section 6 Ramsey reduction.

The two non-anonymous hiding witnesses follow Section 7's proofs:

* **Shatter (Thm 1.3)** — the paths ``P1`` (8 nodes) and ``P2`` (``P1``
  minus ``w1``, with ``w2`` re-attached to ``u1``) on shared node names,
  identifiers, and ports.  Component colorings are oriented so the views
  of ``w3`` and ``z2`` coincide across the two instances while their
  distances have different parity — an odd closed walk in ``V(D, 8)``.
* **Watermelon (Thm 1.4)** — one path ``P8`` under two identifier
  assignments (the second reverses the identifiers of the four middle
  nodes).  With a palindromic port assignment the view of ``u4`` in the
  first instance equals the view of ``u5`` in the second, closing a
  7-edge odd walk in ``V(D, 8)``.
"""

from __future__ import annotations

from ..certification.adversary import ExhaustiveAdversary, GreedyAdversary
from ..certification.checkers import (
    check_completeness,
    check_soundness,
    check_strong_soundness,
)
from ..certification.decoder import ConstantDecoder, FunctionDecoder
from ..certification.enumeration import EnumerativeLCP
from ..core.degree_one import DegreeOneLCP
from ..core.even_cycle import EvenCycleLCP
from ..core.shatter import ShatterLCP
from ..core.trivial import RevealingDecoder, RevealingLCP
from ..core.union import UnionLCP
from ..core.watermelon import WatermelonLCP
from ..engine import ExecutionPlan, decide_hiding
from ..graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    is_bipartite,
    pan_graph,
    path_graph,
    spider_graph,
    star_graph,
    theta_graph,
    watermelon_graph,
)
from ..graphs.families import (
    bipartite_min_degree_one_graphs_up_to,
    bipartite_shatter_graphs_up_to,
    even_cycles_up_to,
    watermelon_family_up_to,
)
from ..local.identifiers import IdentifierAssignment
from ..local.instance import Instance
from ..local.ports import PortAssignment
from ..local.views import extract_view
from ..neighborhood.extraction import build_extraction_decoder, run_extraction
from ..neighborhood.hiding import hiding_verdict_from_instances
from ..ramsey.order_invariant import ramsey_order_invariant_reduction
from ..ramsey.types import structure_catalog
from .registry import ExperimentResult, register


@register(
    "thm11",
    "Theorem 1.1: strong & hiding anonymous LCP for H1 ∪ H2",
    "Theorem 1.1 (Lemmas 4.1, 4.2)",
)
def run_thm11() -> ExperimentResult:
    """Machine-check all three properties of the union scheme:
    completeness over the enumerated promise family, exhaustive strong
    soundness on small graphs, and hiding via both witness families."""
    lcp = UnionLCP()
    yes_graphs = list(bipartite_min_degree_one_graphs_up_to(5)) + list(
        even_cycles_up_to(6)
    )
    completeness = check_completeness(lcp, yes_graphs, port_limit=4, id_samples=1)

    adversarial_graphs = [
        complete_graph(3),
        cycle_graph(5),
        pan_graph(3, 1),
        path_graph(4),
    ]
    strong = check_strong_soundness(
        lcp, adversarial_graphs, ExhaustiveAdversary(max_labelings=60_000), port_limit=1
    )
    sound = check_soundness(
        lcp, [complete_graph(3), cycle_graph(5)], ExhaustiveAdversary(max_labelings=60_000), port_limit=1
    )

    from .figures import degree_one_witness_instances, even_cycle_witness_instances  # noqa: PLC0415

    h1_verdict = hiding_verdict_from_instances(
        UnionLCP(), _retag_union(degree_one_witness_instances(), "H1")
    )
    h2_verdict = hiding_verdict_from_instances(
        UnionLCP(), _retag_union(even_cycle_witness_instances(), "H2")
    )

    rows = [
        {"property": "completeness", "summary": completeness.summary(), "ok": completeness.passed},
        {"property": "soundness", "summary": sound.summary(), "ok": sound.passed},
        {"property": "strong soundness", "summary": strong.summary(), "ok": strong.passed},
        {"property": "hiding via H1 witnesses", "summary": h1_verdict.summary(), "ok": h1_verdict.hiding is True},
        {"property": "hiding via H2 witnesses", "summary": h2_verdict.summary(), "ok": h2_verdict.hiding is True},
    ]
    ok = all(row["ok"] for row in rows)
    return ExperimentResult(
        exp_id="thm11",
        title="Theorem 1.1: strong & hiding anonymous LCP for H1 ∪ H2",
        paper_claim="one-round anonymous constant-size strong & hiding LCP "
        "for graphs with δ=1 or even cycles",
        ok=ok,
        rows=rows,
    )


def _retag_union(instances: list[Instance], tag: str) -> list[Instance]:
    """Wrap sub-scheme certificates in the union scheme's tag."""
    from ..local.labeling import Labeling  # noqa: PLC0415

    out = []
    for instance in instances:
        labeling = instance.require_labeling()
        tagged = Labeling({v: (tag, labeling.of(v)) for v in labeling.nodes()})
        out.append(instance.with_labeling(tagged))
    return out


# ----------------------------------------------------------------------
# Theorem 1.3 — shatter points
# ----------------------------------------------------------------------


def shatter_hiding_witnesses() -> tuple[Instance, Instance]:
    """The Section 7.1 pair ``(P1, P2)`` with aligned labels and ports.

    ``P1``: path ``w3-w2-w1-u1-v-u2-z1-z2`` (nodes 0..7).
    ``P2``: same names minus ``w1`` (node 2); ``w2`` re-attached to
    ``u1``.  Shared identifiers ``i+1`` and id bound 8.  Component
    colorings: ``P1`` uses touch vector ``(0, 0)``, ``P2`` uses
    ``(1, 0)`` — so the certificates of ``w3``/``w2`` and ``z1``/``z2``
    agree across the instances and the boundary views glue.
    """
    from ..core.shatter import (  # noqa: PLC0415
        component_certificate,
        neighbor_certificate,
        shatter_certificate,
    )
    from ..local.labeling import Labeling  # noqa: PLC0415

    p1 = path_graph(8)
    ids1 = IdentifierAssignment({i: i + 1 for i in range(8)})
    inst1 = Instance.build(p1, ids=ids1, id_bound=8)
    vid = 5  # identifier of the shatter point v = node 4
    labels1 = {
        0: component_certificate(vid, 1, 0),
        1: component_certificate(vid, 1, 1),
        2: component_certificate(vid, 1, 0),
        3: neighbor_certificate(vid, (0, 0)),
        4: shatter_certificate(vid),
        5: neighbor_certificate(vid, (0, 0)),
        6: component_certificate(vid, 2, 0),
        7: component_certificate(vid, 2, 1),
    }
    inst1 = inst1.with_labeling(Labeling(labels1))

    p2 = Graph(
        nodes=[0, 1, 3, 4, 5, 6, 7],
        edges=[(0, 1), (1, 3), (3, 4), (4, 5), (5, 6), (6, 7)],
    )
    ids2 = IdentifierAssignment({i: i + 1 for i in [0, 1, 3, 4, 5, 6, 7]})
    inst2 = Instance.build(p2, ids=ids2, id_bound=8)
    labels2 = {
        0: component_certificate(vid, 1, 0),
        1: component_certificate(vid, 1, 1),
        3: neighbor_certificate(vid, (1, 0)),
        4: shatter_certificate(vid),
        5: neighbor_certificate(vid, (1, 0)),
        6: component_certificate(vid, 2, 0),
        7: component_certificate(vid, 2, 1),
    }
    inst2 = inst2.with_labeling(Labeling(labels2))
    return inst1, inst2


@register(
    "thm13",
    "Theorem 1.3: strong & hiding LCP for shatter-point graphs",
    "Theorem 1.3, Lemma 7.1, Section 7.1",
)
def run_thm13() -> ExperimentResult:
    lcp = ShatterLCP()
    yes_graphs = list(bipartite_shatter_graphs_up_to(6))
    completeness = check_completeness(lcp, yes_graphs, port_limit=2, id_samples=2)

    pool = [path_graph(8), spider_graph(3, 2), grid_graph(2, 4), star_graph(4)]
    strong = check_strong_soundness(
        lcp,
        [complete_graph(3), cycle_graph(5), pan_graph(5, 1), theta_graph(2, 2, 3)],
        GreedyAdversary(restarts=6, sweeps=3, seed=7, pool_graphs=pool),
        port_limit=1,
    )

    inst1, inst2 = shatter_hiding_witnesses()
    accepted1 = lcp.check(inst1).unanimous
    accepted2 = lcp.check(inst2).unanimous
    glue_w3 = extract_view(inst1, 0, 1) == extract_view(inst2, 0, 1)
    glue_z2 = extract_view(inst1, 7, 1) == extract_view(inst2, 7, 1)
    verdict = hiding_verdict_from_instances(lcp, [inst1, inst2])

    # The weakened decoders admit explicit strong-soundness violations
    # (reproduction note in the module docstring of repro.core.shatter).
    weak_anchor = ShatterLCP(anchored_type0_id=False)
    weak_color = ShatterLCP(common_touch_color=False)
    # Direct hand-built counterexamples (deterministic, no search needed):
    anchor_broken = _check_rogue_type1_counterexample(weak_anchor)
    color_broken = _check_common_color_counterexample(weak_color)
    repaired_resists = not _check_rogue_type1_counterexample(lcp) and not _check_common_color_counterexample(lcp)

    rows = [
        {"property": "completeness", "summary": completeness.summary(), "ok": completeness.passed},
        {"property": "strong soundness (greedy adversary)", "summary": strong.summary(), "ok": strong.passed},
        {"property": "P1/P2 unanimously accepted", "summary": f"{accepted1}/{accepted2}", "ok": accepted1 and accepted2},
        {"property": "boundary views glue (w3, z2)", "summary": f"{glue_w3}/{glue_z2}", "ok": glue_w3 and glue_z2},
        {"property": "hiding via P1/P2", "summary": verdict.summary(), "ok": verdict.hiding is True},
        {"property": "weakened decoder (no id anchor) broken", "summary": str(anchor_broken), "ok": anchor_broken},
        {"property": "weakened decoder (no common color) broken", "summary": str(color_broken), "ok": color_broken},
        {"property": "repaired decoder resists both counterexamples", "summary": str(repaired_resists), "ok": repaired_resists},
    ]
    ok = all(row["ok"] for row in rows)
    return ExperimentResult(
        exp_id="thm13",
        title="Theorem 1.3: strong & hiding LCP for shatter-point graphs",
        paper_claim="O(min{Δ²,n}+log n)-bit strong & hiding one-round LCP; "
        "hiding witnessed by the P1/P2 path pair",
        ok=ok,
        rows=rows,
        notes=[
            "decoder carries two repairs over the paper's literal conditions; "
            "both weakened variants are machine-refuted (see repro.core.shatter)"
        ],
    )


def _check_rogue_type1_counterexample(lcp: ShatterLCP) -> bool:
    """The rogue-type-1 attack against the unanchored decoder.

    A 7-cycle ``v u1 a1 a2 u' b1 u2`` where the genuine shatter point
    ``v`` sits on the cycle and the far type-1 node ``u'`` is vouched by
    a *rejecting* pendant type-0 node ``w0'`` that merely claims ``v``'s
    identifier.  ``u'`` stitches components 1 and 2 together at odd
    parity; every cycle node accepts, only the pendant rejects.  With the
    anchored-identifier repair, ``u'`` notices its anchor's actual
    identifier is wrong and rejects.  Returns True iff the attack goes
    through (decoder broken).
    """
    from ..core.shatter import (  # noqa: PLC0415
        component_certificate,
        neighbor_certificate,
        shatter_certificate,
    )
    from ..local.labeling import Labeling  # noqa: PLC0415
    from ..graphs.properties import bipartition  # noqa: PLC0415

    # v=0, u1=1, a1=2, a2=3, u'=4, b1=5, u2=6, w0'=7; canonical ids i+1.
    g = Graph(
        nodes=range(8),
        edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 0), (4, 7)],
    )
    vid = 1  # Id(v)
    labels = {
        0: shatter_certificate(vid),
        1: neighbor_certificate(vid, (0, 1)),
        2: component_certificate(vid, 1, 0),
        3: component_certificate(vid, 1, 1),
        4: neighbor_certificate(vid, (1, 1)),
        5: component_certificate(vid, 2, 1),
        6: neighbor_certificate(vid, (0, 1)),
        7: shatter_certificate(vid),  # claims v's identifier; its own is 8
    }
    instance = Instance.build(g, id_bound=8).with_labeling(Labeling(labels))
    result = lcp.check(instance)
    induced = g.induced_subgraph(result.accepting)
    return not bipartition(induced).is_bipartite


def _check_common_color_counterexample(lcp: ShatterLCP) -> bool:
    """The C5-through-two-type-1-nodes attack against the decoder without
    the common-touch-color check: colors vectors differ per type-1 node
    but each condition 2(c)/3(b,c) holds pointwise.  Returns True iff the
    attack goes through."""
    from ..core.shatter import (  # noqa: PLC0415
        component_certificate,
        neighbor_certificate,
        shatter_certificate,
    )
    from ..local.labeling import Labeling  # noqa: PLC0415
    from ..graphs.properties import bipartition  # noqa: PLC0415

    # C5 = A(1) B(2) C(3) D(4) E(5); pendant anchor w0 adjacent to A and D.
    g = Graph(
        nodes=range(6),
        edges=[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 5), (3, 5)],
    )
    claimed = 6  # node 5's canonical identifier
    labels = {
        0: neighbor_certificate(claimed, (0, 0)),   # A: touches B (#1, x=0) and E (#2, x=0)
        1: component_certificate(claimed, 1, 0),     # B
        2: component_certificate(claimed, 1, 1),     # C
        3: neighbor_certificate(claimed, (1, 0)),    # D: touches C (#1, x=1) and E (#2, x=0)
        4: component_certificate(claimed, 2, 0),     # E
        5: shatter_certificate(claimed),             # w0 (rejects: contents differ)
    }
    instance = Instance.build(g, id_bound=6).with_labeling(Labeling(labels))
    result = lcp.check(instance)
    induced = g.induced_subgraph(result.accepting)
    return not bipartition(induced).is_bipartite


# ----------------------------------------------------------------------
# Theorem 1.4 — watermelons
# ----------------------------------------------------------------------


def watermelon_hiding_witnesses() -> tuple[Instance, Instance]:
    """The Section 7.2 pair: one P8 under two identifier assignments.

    Ports are chosen palindromically so the reflected middle views
    coincide: ``prt(u4→u5) = prt(u5→u4) = 1`` and outward ports mirror.
    Identifier assignment 2 reverses the identifiers of ``u3..u6``.
    """
    graph = path_graph(8)
    ports = PortAssignment(
        {
            0: {1: 1},
            1: {2: 1, 0: 2},
            2: {3: 1, 1: 2},
            3: {4: 1, 2: 2},
            4: {3: 1, 5: 2},
            5: {4: 1, 6: 2},
            6: {5: 1, 7: 2},
            7: {6: 1},
        }
    )
    ids1 = IdentifierAssignment({i: i + 1 for i in range(8)})
    ids2 = IdentifierAssignment({0: 1, 1: 2, 2: 6, 3: 5, 4: 4, 5: 3, 6: 7, 7: 8})
    lcp = WatermelonLCP()
    inst1 = Instance(graph=graph, ports=ports, ids=ids1, id_bound=8)
    inst2 = Instance(graph=graph, ports=ports, ids=ids2, id_bound=8)
    inst1.validate()
    inst2.validate()
    inst1 = inst1.with_labeling(lcp.prover.certify(inst1))
    inst2 = inst2.with_labeling(lcp.prover.certify(inst2))
    return inst1, inst2


@register(
    "thm14",
    "Theorem 1.4: strong & hiding LCP for watermelon graphs",
    "Theorem 1.4, Section 7.2",
)
def run_thm14() -> ExperimentResult:
    lcp = WatermelonLCP()
    yes_graphs = [g for g in watermelon_family_up_to(7) if is_bipartite(g)]
    completeness = check_completeness(lcp, yes_graphs, port_limit=2, id_samples=2)

    pool = [path_graph(8), watermelon_graph([2, 2]), watermelon_graph([2, 4]), theta_graph(2, 2, 2)]
    strong = check_strong_soundness(
        lcp,
        [complete_graph(3), cycle_graph(5), theta_graph(2, 2, 3), pan_graph(3, 2)],
        GreedyAdversary(restarts=6, sweeps=3, seed=11, pool_graphs=pool),
        port_limit=1,
    )

    inst1, inst2 = watermelon_hiding_witnesses()
    accepted = lcp.check(inst1).unanimous and lcp.check(inst2).unanimous
    glue_ends = extract_view(inst1, 0, 1) == extract_view(inst2, 0, 1)
    glue_middle = extract_view(inst1, 3, 1) == extract_view(inst2, 4, 1)
    verdict = hiding_verdict_from_instances(lcp, [inst1, inst2])

    rows = [
        {"property": "completeness", "summary": completeness.summary(), "ok": completeness.passed},
        {"property": "strong soundness (greedy adversary)", "summary": strong.summary(), "ok": strong.passed},
        {"property": "I1/I2 unanimously accepted", "summary": str(accepted), "ok": accepted},
        {"property": "view gluing: u1 and u4/u5", "summary": f"{glue_ends}/{glue_middle}", "ok": glue_ends and glue_middle},
        {"property": "hiding via I1/I2", "summary": verdict.summary(), "ok": verdict.hiding is True},
    ]
    ok = all(row["ok"] for row in rows)
    return ExperimentResult(
        exp_id="thm14",
        title="Theorem 1.4: strong & hiding LCP for watermelon graphs",
        paper_claim="O(log n)-bit strong & hiding one-round LCP for "
        "watermelon graphs; hiding via two identifier assignments of P8",
        ok=ok,
        rows=rows,
    )


# ----------------------------------------------------------------------
# Lemma 3.2 — the characterization, both directions
# ----------------------------------------------------------------------


@register(
    "lem32",
    "Lemma 3.2: hiding ⇔ V(D, n) not k-colorable",
    "Lemma 3.2, Section 3",
)
def run_lem32() -> ExperimentResult:
    rows = []
    # Direction 1: hiding schemes have non-2-colorable neighborhood graphs.
    for name, lcp, n in [
        ("degree-one", DegreeOneLCP(), 4),
        ("even-cycle", EvenCycleLCP(), 6),
    ]:
        verdict = decide_hiding(lcp, n)
        rows.append(
            {
                "lcp": name,
                "n": n,
                "V_order": verdict.ngraph.order,
                "V_size": verdict.ngraph.size,
                "verdict": verdict.summary(),
                "ok": verdict.hiding is True,
            }
        )
    # Direction 2: the revealing baseline is 2-colorable; the compiled
    # extraction decoder recovers a proper coloring on accepted instances.
    lcp = RevealingLCP()
    # The extraction direction consumes the complete V(D, n), which the
    # materialized backend guarantees even on future hiding=True schemes.
    verdict = decide_hiding(lcp, 4, ExecutionPlan(backend="materialized"))
    decoder = (
        build_extraction_decoder(verdict.ngraph, 2) if verdict.hiding is False else None
    )
    extraction_ok = False
    if decoder is not None:
        extraction_ok = True
        for graph in [path_graph(4), cycle_graph(4), star_graph(3)]:
            instance = Instance.build(graph, id_bound=4)
            labeling = lcp.prover.certify(instance)
            outcome = run_extraction(decoder, lcp, instance.with_labeling(labeling))
            extraction_ok = extraction_ok and outcome.proper
    rows.append(
        {
            "lcp": "revealing",
            "n": 4,
            "V_order": verdict.ngraph.order,
            "V_size": verdict.ngraph.size,
            "verdict": verdict.summary() + f"; extraction proper={extraction_ok}",
            "ok": verdict.hiding is False and extraction_ok,
        }
    )
    # General k: the k = 3 instantiation of the characterization.
    lcp3 = RevealingLCP(k=3)
    verdict3 = decide_hiding(
        lcp3, 4, ExecutionPlan(backend="materialized", labeling_limit=5_000)
    )
    decoder3 = (
        build_extraction_decoder(verdict3.ngraph, 3)
        if verdict3.hiding is False
        else None
    )
    extraction3 = False
    if decoder3 is not None:
        instance3 = Instance.build(complete_graph(3), id_bound=4)
        labeling3 = lcp3.prover.certify(instance3)
        extraction3 = run_extraction(
            decoder3, lcp3, instance3.with_labeling(labeling3)
        ).proper
    rows.append(
        {
            "lcp": "revealing (k=3)",
            "n": 4,
            "V_order": verdict3.ngraph.order,
            "V_size": verdict3.ngraph.size,
            "verdict": verdict3.summary() + f"; extraction proper={extraction3}",
            "ok": verdict3.hiding is False and extraction3,
        }
    )
    ok = all(row["ok"] for row in rows)
    return ExperimentResult(
        exp_id="lem32",
        title="Lemma 3.2: hiding ⇔ V(D, n) not k-colorable",
        paper_claim="odd cycles in V(D,n) certify hiding; a 2-colorable "
        "V(D,n) compiles into an extraction decoder D'",
        ok=ok,
        rows=rows,
    )


# ----------------------------------------------------------------------
# Theorem 1.2 / 6.3 — impossibility dichotomy probe
# ----------------------------------------------------------------------


def _candidate_decoders() -> list[tuple[str, EnumerativeLCP]]:
    """The Theorem 1.2 candidate catalog on the class B(Δ, r).

    Each candidate is a one-round decoder with a small certificate
    alphabet, wrapped as an LCP by exhaustive proving.
    """
    def degree_cap(view) -> bool:
        return view.center_degree <= 3

    catalog: list[tuple[str, EnumerativeLCP]] = [
        (
            "accept-all",
            EnumerativeLCP(
                ConstantDecoder(True, anonymous=True), ["c"], promise_fn=is_bipartite,
                name="accept-all",
            ),
        ),
        (
            "degree-cap",
            EnumerativeLCP(
                FunctionDecoder(degree_cap, anonymous=True, name="degree-cap"),
                ["c"],
                promise_fn=is_bipartite,
                name="degree-cap",
            ),
        ),
        (
            "revealing",
            EnumerativeLCP(
                RevealingDecoder(2), [0, 1], promise_fn=is_bipartite, name="revealing"
            ),
        ),
        (
            "parity-of-ports",
            EnumerativeLCP(
                FunctionDecoder(
                    lambda view: all(
                        view.label_of(w) != view.center_label
                        for w in view.neighbors_in_view(0)
                    ),
                    anonymous=True,
                    name="neighbor-disagreement",
                ),
                ["a", "b", "c"],
                promise_fn=is_bipartite,
                name="neighbor-disagreement-3",
            ),
        ),
    ]
    return catalog


@register(
    "thm12",
    "Theorem 1.2/6.3: no strong & hiding LCP on r-forgetful classes",
    "Theorems 1.2, 1.5, 6.3",
)
def run_thm12() -> ExperimentResult:
    """Dichotomy probe: every candidate decoder on the r-forgetful class
    is either revealed (2-colorable witness V) or breaks strong soundness
    (an accepted odd-cycle counterexample exists).

    The theorem quantifies over all decoders; this experiment
    machine-checks its prediction on an explicit catalog (and the unit
    tests add random decoders).  The witness yes-instance is the
    bipartite theta graph θ(4,4,6): connected, 1-forgetful, min degree 2,
    two cycles — exactly the class B(Δ, r) of Theorem 6.3.
    """
    theta = theta_graph(4, 4, 6)
    no_instances = [cycle_graph(5), theta_graph(2, 2, 3), complete_graph(3)]
    rows = []
    ok = True
    for name, lcp in _candidate_decoders():
        from ..neighborhood.aviews import labeled_yes_instances  # noqa: PLC0415
        from ..neighborhood.ngraph import build_neighborhood_graph  # noqa: PLC0415

        try:
            labeled = list(
                labeled_yes_instances(lcp, [theta], port_limit=1, id_bound=theta.order)
            )
        except Exception:
            labeled = []
        complete_on_theta = bool(labeled)
        hiding = None
        if labeled:
            # Bounded scan: a handful of accepted labelings suffices for a
            # positive hiding witness.
            ngraph = build_neighborhood_graph(lcp, labeled[:40])
            odd = ngraph.find_odd_cycle()
            hiding = True if odd is not None else None

        strong_report = check_strong_soundness(
            lcp, no_instances, ExhaustiveAdversary(max_labelings=100_000), port_limit=1
        )
        strong = strong_report.passed
        dichotomy_ok = not (complete_on_theta and strong and hiding is True)
        ok = ok and dichotomy_ok
        rows.append(
            {
                "decoder": name,
                "complete_on_theta": complete_on_theta,
                "hiding_witness": hiding,
                "strong_sound": strong,
                "dichotomy_holds": dichotomy_ok,
            }
        )
    return ExperimentResult(
        exp_id="thm12",
        title="Theorem 1.2/6.3: no strong & hiding LCP on r-forgetful classes",
        paper_claim="no one-round constant-size LCP on B(Δ, r) is "
        "simultaneously complete, strongly sound, and hiding",
        ok=ok,
        rows=rows,
    )


# ----------------------------------------------------------------------
# Lemma 6.2 — the Ramsey reduction
# ----------------------------------------------------------------------


@register(
    "lem62",
    "Lemma 6.2: Ramsey reduction to order-invariant decoders",
    "Lemma 6.2, Section 6",
)
def run_lem62() -> ExperimentResult:
    """Run the finite Ramsey pipeline on a constant-size, genuinely
    identifier-value-dependent decoder and verify the reduction.

    Lemma 6.2 is stated for constant-size certificates (the watermelon/
    shatter certificates embed identifier *values* and are outside its
    scope).  The probe decoder accepts iff the certificate bit matches
    ``center_id mod 2`` — maximally value-dependent and not
    order-invariant.  The pipeline must (a) find a monochromatic
    identifier set, (b) produce an order-invariant ``D'``, and (c) have
    ``D'`` agree with ``D`` on instances whose identifiers are drawn
    from the monochromatic set, including all their order types.
    """
    from ..local.algorithms import is_order_invariant_on  # noqa: PLC0415

    def id_parity(view) -> bool:
        return view.center_label == view.center_id % 2

    decoder = FunctionDecoder(id_parity, anonymous=False, name="id-parity")
    lcp = EnumerativeLCP(decoder, [0, 1], promise_fn=is_bipartite, name="id-parity")
    base = Instance.build(path_graph(5), id_bound=24)
    labeled = base.with_labeling(lcp.prover.certify(base))
    catalog = structure_catalog(decoder, [labeled])
    reduction, dprime = ramsey_order_invariant_reduction(
        decoder, catalog, tuple(range(1, 25)), target_size=6
    )
    rows = [
        {
            "catalog_structures": reduction.catalog_size,
            "subset_size_s": reduction.subset_size,
            "universe": f"[1..{max(reduction.universe)}]",
            "monochromatic_set": reduction.monochromatic_set,
            "found": reduction.succeeded,
        }
    ]
    ok = reduction.succeeded and dprime is not None
    if ok:
        # The original decoder is NOT order-invariant; D' must be.
        from ..local.labeling import Labeling  # noqa: PLC0415

        probe = Instance.build(path_graph(4), id_bound=4)
        probe = probe.with_labeling(Labeling({v: v % 2 for v in probe.graph.nodes}))
        original_invariant = is_order_invariant_on(decoder, probe)
        invariant = is_order_invariant_on(dprime, probe)
        # Agreement with D on identifier draws from the monochromatic set.
        agree = True
        chosen = sorted(reduction.monochromatic_set)
        if len(chosen) >= 5:
            ids = IdentifierAssignment({i: chosen[i] for i in range(5)})
            inst = Instance.build(path_graph(5), ids=ids, id_bound=24)
            inst = inst.with_labeling(lcp.prover.certify(inst))
            for v in inst.graph.nodes:
                view = extract_view(inst, v, 1)
                if dprime.decide(view) != decoder.decide(view):
                    agree = False
        rows.append(
            {
                "original_order_invariant": original_invariant,
                "reduced_order_invariant": invariant,
                "agrees_on_mono_ids": agree,
            }
        )
        ok = ok and invariant and agree and not original_invariant
    return ExperimentResult(
        exp_id="lem62",
        title="Lemma 6.2: Ramsey reduction to order-invariant decoders",
        paper_claim="constant-size decoders reduce to order-invariant ones "
        "via a monochromatic identifier set",
        ok=ok,
        rows=rows,
    )
