"""Experiment registry: every paper artifact mapped to runnable code.

Each experiment regenerates one figure, lemma, or theorem of the paper
and returns an :class:`ExperimentResult` with structured rows (rendered
by :mod:`repro.experiments.report` and asserted on by the test suite and
benchmarks).  ``ok`` means the paper's claim was machine-verified at the
scales the experiment covers.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from ..errors import ExperimentError


@dataclass
class ExperimentResult:
    """Structured outcome of one experiment run."""

    exp_id: str
    title: str
    paper_claim: str
    ok: bool
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def require_ok(self) -> "ExperimentResult":
        if not self.ok:
            raise ExperimentError(
                f"experiment {self.exp_id} failed: {self.title}; notes={self.notes}"
            )
        return self


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artifact."""

    exp_id: str
    title: str
    paper_ref: str
    runner: Callable[[], ExperimentResult]

    def run(self) -> ExperimentResult:
        return self.runner()


_REGISTRY: dict[str, Experiment] = {}


def register(exp_id: str, title: str, paper_ref: str):
    """Decorator registering an experiment runner under *exp_id*."""

    def wrap(fn: Callable[[], ExperimentResult]) -> Callable[[], ExperimentResult]:
        if exp_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {exp_id!r}")
        _REGISTRY[exp_id] = Experiment(
            exp_id=exp_id, title=title, paper_ref=paper_ref, runner=fn
        )
        return fn

    return wrap


def get_experiment(exp_id: str) -> Experiment:
    _ensure_loaded()
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None


def experiment_ids() -> list[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def all_experiments() -> list[Experiment]:
    _ensure_loaded()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def run_experiment(exp_id: str) -> ExperimentResult:
    return get_experiment(exp_id).run()


_loaded = False


def _ensure_loaded() -> None:
    """Import the experiment modules so their registrations execute."""
    global _loaded
    if _loaded:
        return
    from . import extensions, figures, tables, theorems  # noqa: F401,PLC0415  (side-effect imports)

    _loaded = True
