"""Batch runner: execute experiments and persist the report.

Used by CI-style invocations (`python -m repro.experiments.runner`) and
by anyone who wants the full reproduction written to disk in one call.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..obs.trace import NULL_TRACER, Tracer
from ..perf import GLOBAL_STATS
from ..perf.config import CONFIG
from .registry import ExperimentResult, all_experiments
from .report import render_perf_stats, render_results


def run_all(
    verbose: bool = True,
    workers: int | None = None,
    streaming: bool | None = None,
    disk_cache: bool | None = None,
    symmetry: str | None = None,
    tracer: Tracer | None = None,
) -> list[ExperimentResult]:
    """Run every registered experiment, in id order.

    With *workers* > 1 the neighborhood-graph sweeps inside the
    experiments run on a process pool (results are identical; see
    :mod:`repro.perf.parallel`).  *streaming* routes the hiding sweeps
    through the early-exit engine, and *disk_cache* persists their
    verdicts under ``.repro_cache/`` across runs — experiments that need
    the complete ``V(D, n)`` opt out per call, so all verdicts are
    unchanged either way.

    The knobs are scoped to this call (``CONFIG.overridden``): a runner
    invocation can no longer leak ``workers``/``streaming``/``disk_cache``
    into subsequent in-process work.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    results = []
    with CONFIG.overridden(
        workers=workers,
        streaming=streaming,
        disk_cache=disk_cache,
        symmetry=symmetry,
    ):
        with tracer.span("run-all", experiments=len(all_experiments())):
            for experiment in all_experiments():
                start = time.perf_counter()
                with tracer.span(
                    "experiment", exp_id=experiment.exp_id
                ) as span:
                    result = experiment.run()
                    span.set_attribute("ok", result.ok)
                elapsed = time.perf_counter() - start
                if verbose:
                    status = "OK" if result.ok else "MISMATCH"
                    print(
                        f"[{status}] {experiment.exp_id} ({elapsed:.1f}s)",
                        file=sys.stderr,
                    )
                result.notes.append(f"wall time: {elapsed:.2f}s")
                results.append(result)
    return results


def run_all_and_save(
    path: str | Path,
    verbose: bool = True,
    workers: int | None = None,
    streaming: bool | None = None,
    disk_cache: bool | None = None,
    symmetry: str | None = None,
    trace_out: str | Path | None = None,
) -> bool:
    """Run everything, write the rendered report (plus the perf-stats
    section) to *path*.

    With *trace_out*, the batch also runs traced: a
    :class:`~repro.obs.report.RunReport` (one span per experiment under
    a ``run-all`` root) is written to that path, plus the
    content-addressed copy under ``.repro_runs/``.

    Returns True iff every experiment reproduced OK.
    """
    GLOBAL_STATS.reset()
    tracer = Tracer() if trace_out is not None else None
    results = run_all(
        verbose=verbose,
        workers=workers,
        streaming=streaming,
        disk_cache=disk_cache,
        symmetry=symmetry,
        tracer=tracer,
    )
    report = render_results(results) + "\n\n" + render_perf_stats(GLOBAL_STATS)
    Path(path).write_text(report + "\n", encoding="utf-8")
    if tracer is not None:
        from ..obs.report import RunReport  # noqa: PLC0415

        run_report = RunReport.from_run(
            tracer=tracer,
            stats=GLOBAL_STATS,
            meta={
                "kind": "experiment-batch",
                "experiments": [r.exp_id for r in results],
                "ok": all(r.ok for r in results),
            },
        )
        run_report.write(path=trace_out)
    return all(r.ok for r in results)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="run every experiment and persist the report",
    )
    parser.add_argument(
        "target", nargs="?", default="experiment_report.txt", help="report path"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="processes for the neighborhood-graph sweeps (default: serial)",
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="route hiding sweeps through the early-exit streaming engine "
        "(auto-upgraded to the vectorized numpy kernel backend when numpy "
        "is importable; scalar fallback otherwise)",
    )
    parser.add_argument(
        "--disk-cache",
        action="store_true",
        help="persist streaming sweep verdicts under .repro_cache/",
    )
    parser.add_argument(
        "--symmetry",
        choices=["auto", "on", "off"],
        default=None,
        help="symmetry reduction for the sweeps (orderly generation + "
        "orbit pruning; default: the session config)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="also write a traced run report (one span per experiment)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help="configure the repro.* logger hierarchy",
    )
    args = parser.parse_args(argv)
    if args.log_level is not None:
        from ..obs.logs import setup_logging  # noqa: PLC0415

        setup_logging(args.log_level)
    ok = run_all_and_save(
        args.target,
        workers=args.workers,
        streaming=args.streaming or None,
        disk_cache=args.disk_cache or None,
        symmetry=args.symmetry,
        trace_out=args.trace_out,
    )
    print(f"report written to {args.target}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
