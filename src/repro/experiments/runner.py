"""Batch runner: execute experiments and persist the report.

Used by CI-style invocations (`python -m repro.experiments.runner`) and
by anyone who wants the full reproduction written to disk in one call.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from .registry import ExperimentResult, all_experiments
from .report import render_results


def run_all(verbose: bool = True) -> list[ExperimentResult]:
    """Run every registered experiment, in id order."""
    results = []
    for experiment in all_experiments():
        start = time.perf_counter()
        result = experiment.run()
        elapsed = time.perf_counter() - start
        if verbose:
            status = "OK" if result.ok else "MISMATCH"
            print(f"[{status}] {experiment.exp_id} ({elapsed:.1f}s)", file=sys.stderr)
        result.notes.append(f"wall time: {elapsed:.2f}s")
        results.append(result)
    return results


def run_all_and_save(path: str | Path, verbose: bool = True) -> bool:
    """Run everything, write the rendered report to *path*.

    Returns True iff every experiment reproduced OK.
    """
    results = run_all(verbose=verbose)
    Path(path).write_text(render_results(results) + "\n", encoding="utf-8")
    return all(r.ok for r in results)


def main() -> int:
    target = sys.argv[1] if len(sys.argv) > 1 else "experiment_report.txt"
    ok = run_all_and_save(target)
    print(f"report written to {target}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
