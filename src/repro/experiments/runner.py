"""Batch runner: execute experiments and persist the report.

Used by CI-style invocations (`python -m repro.experiments.runner`) and
by anyone who wants the full reproduction written to disk in one call.

The runner's configuration surface is two objects: an
:class:`~repro.engine.plan.ExecutionPlan` saying *how* the experiments'
sweeps should run, and (optionally) a
:class:`~repro.campaign.CampaignSpec` naming a parameter-frontier sweep
to append to the batch.  The historical keyword knobs
(``workers``/``streaming``/``disk_cache``/``symmetry``) remain accepted
as a back-compat wrapper — :func:`plan_from_knobs` is the single
translation into a plan, and mixing the two vocabularies in one call
raises.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..engine.plan import (
    BACKEND_AUTO,
    BACKEND_MATERIALIZED,
    ExecutionPlan,
)
from ..obs.progress import GLOBAL_PROGRESS
from ..obs.trace import NULL_TRACER, Tracer
from ..perf import GLOBAL_STATS
from ..perf.config import CONFIG
from .registry import ExperimentResult, all_experiments
from .report import render_perf_stats, render_results


def plan_from_knobs(
    workers: int | None = None,
    streaming: bool | None = None,
    disk_cache: bool | None = None,
    symmetry: str | None = None,
) -> ExecutionPlan:
    """The legacy runner vocabulary as an (unresolved) plan.

    ``None`` everywhere means "defer to the session config", exactly the
    historical behavior; ``streaming`` maps onto the backend axis the
    same way :func:`repro.engine.plan.resolve_plan` does.
    """
    if streaming is None:
        backend = BACKEND_AUTO
    else:
        backend = "streaming" if streaming else BACKEND_MATERIALIZED
    return ExecutionPlan(
        backend=backend,
        workers=workers,
        disk_cache=disk_cache,
        symmetry=symmetry,
    )


def config_overrides(plan: ExecutionPlan | None) -> dict:
    """The ``CONFIG.overridden`` kwargs one plan scopes a batch with.

    Experiments read the session config rather than taking a plan per
    call, so the runner projects the plan back onto the config knobs for
    the duration of the batch.  ``None`` fields override nothing (the
    pre-plan semantics of the keyword knobs).
    """
    if plan is None:
        return {}
    streaming = None
    if plan.backend != BACKEND_AUTO:
        streaming = plan.backend != BACKEND_MATERIALIZED
    return {
        "workers": plan.workers,
        "streaming": streaming,
        "disk_cache": plan.disk_cache,
        "symmetry": plan.symmetry,
    }


def _plan_or_legacy(
    plan: ExecutionPlan | None,
    workers,
    streaming,
    disk_cache,
    symmetry,
) -> ExecutionPlan:
    legacy = {
        "workers": workers,
        "streaming": streaming,
        "disk_cache": disk_cache,
        "symmetry": symmetry,
    }
    given = {name: value for name, value in legacy.items() if value is not None}
    if plan is not None:
        if given:
            raise ValueError(
                "run_all: pass either plan= or the legacy knobs "
                f"({', '.join(sorted(given))}), not both"
            )
        return plan
    return plan_from_knobs(**legacy)


def run_all(
    plan: ExecutionPlan | None = None,
    verbose: bool = True,
    tracer: Tracer | None = None,
    *,
    workers: int | None = None,
    streaming: bool | None = None,
    disk_cache: bool | None = None,
    symmetry: str | None = None,
) -> list[ExperimentResult]:
    """Run every registered experiment, in id order.

    *plan* scopes the batch: its backend/workers/cache/symmetry fields
    become the session config for the duration of the call
    (``CONFIG.overridden``), so a runner invocation can no longer leak
    knobs into subsequent in-process work.  The keyword knobs are the
    pre-plan vocabulary, still accepted (but not combinable with
    *plan*) via :func:`plan_from_knobs`.
    """
    plan = _plan_or_legacy(plan, workers, streaming, disk_cache, symmetry)
    tracer = tracer if tracer is not None else NULL_TRACER
    results = []
    with CONFIG.overridden(**config_overrides(plan)):
        with tracer.span("run-all", experiments=len(all_experiments())):
            for experiment in all_experiments():
                start = time.perf_counter()
                GLOBAL_PROGRESS.emit(
                    "experiment_started",
                    exp_id=experiment.exp_id,
                    trace_id=tracer.trace_id if tracer.active else None,
                )
                with tracer.span(
                    "experiment", exp_id=experiment.exp_id
                ) as span:
                    result = experiment.run()
                    span.set_attribute("ok", result.ok)
                elapsed = time.perf_counter() - start
                GLOBAL_PROGRESS.emit(
                    "experiment_finished",
                    exp_id=experiment.exp_id,
                    ok=result.ok,
                    wall_time_s=elapsed,
                    trace_id=tracer.trace_id if tracer.active else None,
                )
                if verbose:
                    status = "OK" if result.ok else "MISMATCH"
                    print(
                        f"[{status}] {experiment.exp_id} ({elapsed:.1f}s)",
                        file=sys.stderr,
                    )
                result.notes.append(f"wall time: {elapsed:.2f}s")
                results.append(result)
    return results


def run_all_and_save(
    path: str | Path,
    plan: ExecutionPlan | None = None,
    campaign=None,
    verbose: bool = True,
    trace_out: str | Path | None = None,
    *,
    workers: int | None = None,
    streaming: bool | None = None,
    disk_cache: bool | None = None,
    symmetry: str | None = None,
) -> bool:
    """Run everything, write the rendered report (plus the perf-stats
    section) to *path*.

    With *campaign* (a :class:`~repro.campaign.CampaignSpec`), the batch
    also sweeps the parameter frontier: the campaign runs after the
    experiments, its :class:`~repro.campaign.FrontierReport` is written
    content-addressed under ``.repro_runs/``, and a frontier section is
    appended to the text report.

    With *trace_out*, the batch also runs traced: a
    :class:`~repro.obs.report.RunReport` (one span per experiment under
    a ``run-all`` root) is written to that path, plus the
    content-addressed copy under ``.repro_runs/``.

    Returns True iff every experiment reproduced OK (and, when a
    campaign ran, every cell decided without error).
    """
    GLOBAL_STATS.reset()
    tracer = Tracer() if trace_out is not None else None
    results = run_all(
        plan=plan,
        verbose=verbose,
        tracer=tracer,
        workers=workers,
        streaming=streaming,
        disk_cache=disk_cache,
        symmetry=symmetry,
    )
    report = render_results(results) + "\n\n" + render_perf_stats(GLOBAL_STATS)
    ok = all(r.ok for r in results)
    if campaign is not None:
        from ..campaign import build_frontier_report, run_campaign  # noqa: PLC0415

        run = run_campaign(campaign)
        frontier = build_frontier_report(run)
        canonical = frontier.write()
        summary = frontier.payload["summary"]
        report += (
            "\n\nPARAMETER FRONTIER\n"
            f"  cells: {summary['cells']}  errors: {summary['errors']}  "
            f"flips: {summary['flips']} {summary['flips_by_axis']}\n"
            f"  report: {canonical}\n"
        )
        ok = ok and not run.errors
    Path(path).write_text(report + "\n", encoding="utf-8")
    if tracer is not None:
        from ..obs.report import RunReport  # noqa: PLC0415

        run_report = RunReport.from_run(
            tracer=tracer,
            stats=GLOBAL_STATS,
            meta={
                "kind": "experiment-batch",
                "experiments": [r.exp_id for r in results],
                "ok": all(r.ok for r in results),
            },
        )
        run_report.write(path=trace_out)
    return ok


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="run every experiment and persist the report",
    )
    parser.add_argument(
        "target", nargs="?", default="experiment_report.txt", help="report path"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="processes for the neighborhood-graph sweeps (default: serial)",
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="route hiding sweeps through the early-exit streaming engine "
        "(auto-upgraded to the vectorized numpy kernel backend when numpy "
        "is importable; scalar fallback otherwise)",
    )
    parser.add_argument(
        "--disk-cache",
        action="store_true",
        help="persist streaming sweep verdicts under .repro_cache/",
    )
    parser.add_argument(
        "--symmetry",
        choices=["auto", "on", "off"],
        default=None,
        help="symmetry reduction for the sweeps (orderly generation + "
        "orbit pruning; default: the session config)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="also write a traced run report (one span per experiment)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=["debug", "info", "warning", "error", "critical"],
        help="configure the repro.* logger hierarchy",
    )
    args = parser.parse_args(argv)
    if args.log_level is not None:
        from ..obs.logs import setup_logging  # noqa: PLC0415

        setup_logging(args.log_level)
    # The CLI speaks the legacy vocabulary; translate once, up front.
    plan = plan_from_knobs(
        workers=args.workers,
        streaming=args.streaming or None,
        disk_cache=args.disk_cache or None,
        symmetry=args.symmetry,
    )
    ok = run_all_and_save(args.target, plan=plan, trace_out=args.trace_out)
    print(f"report written to {args.target}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
