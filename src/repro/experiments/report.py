"""Rendering experiment results as monospace reports."""

from __future__ import annotations

from .._util import format_table
from .registry import ExperimentResult


def render_result(result: ExperimentResult) -> str:
    """A human-readable report for one experiment."""
    status = "OK" if result.ok else "MISMATCH"
    lines = [
        f"== {result.exp_id}: {result.title} [{status}]",
        f"   paper claim: {result.paper_claim}",
    ]
    if result.rows:
        headers = list(result.rows[0].keys())
        table_rows = [[row.get(h, "") for h in headers] for row in result.rows]
        lines.append("")
        lines.append(_indent(format_table(headers, table_rows), "   "))
    for note in result.notes:
        lines.append(f"   note: {note}")
    return "\n".join(lines)


def render_results(results: list[ExperimentResult]) -> str:
    """A full report plus a verdict summary block."""
    sections = [render_result(r) for r in results]
    summary_rows = [
        [r.exp_id, "OK" if r.ok else "MISMATCH", r.title] for r in results
    ]
    sections.append(
        "== summary\n" + _indent(format_table(["experiment", "status", "title"], summary_rows), "   ")
    )
    return "\n\n".join(sections)


def render_perf_stats(stats) -> str:
    """The performance-layer counters as a report section.

    *stats* is a :class:`repro.perf.PerfStats` (usually the process-wide
    ``GLOBAL_STATS``); the section shows cache hit rates, counter totals,
    and stage timings accumulated across the rendered experiments.
    """
    return "== performance\n" + _indent(stats.render(), "   ")


def _indent(text: str, prefix: str) -> str:
    return "\n".join(prefix + line for line in text.splitlines())
