"""Experiment harness: every figure/lemma/theorem of the paper as a
registered, runnable experiment with structured results."""

from .registry import (
    Experiment,
    ExperimentResult,
    all_experiments,
    experiment_ids,
    get_experiment,
    register,
    run_experiment,
)
from .report import render_result, render_results

__all__ = [
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "experiment_ids",
    "get_experiment",
    "register",
    "render_result",
    "render_results",
    "run_experiment",
]
