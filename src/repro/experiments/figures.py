"""Figure experiments: regenerate Figures 1–8 of the paper.

Each experiment reconstructs the paper's figure as data (not pixels):
the r-forgetful escape paths of Fig. 1, the compatible views of Figs. 2
and 7, the odd view-cycles of Figs. 4 and 6 with their witness instances
of Figs. 3 and 5, and the closed-walk construction of Fig. 8.
"""

from __future__ import annotations

from ..certification.decoder import ConstantDecoder
from ..certification.enumeration import EnumerativeLCP
from ..core.degree_one import DegreeOneLCP
from ..core.even_cycle import EvenCycleLCP
from ..graphs import (
    binary_tree,
    cycle_graph,
    diameter,
    grid_graph,
    is_bipartite,
    path_graph,
    theta_graph,
    toroidal_grid_graph,
)
from ..graphs.forgetful import forgetful_report
from ..local.instance import Instance
from ..local.simulator import simulate_views
from ..local.views import extract_view
from ..neighborhood.aviews import labeled_yes_instances
from ..neighborhood.hiding import hiding_verdict_from_instances
from ..realizability.compatibility import node_compatible_with
from ..realizability.surgery import compose_with_escape_walks
from ..realizability.walks import escape_walk, is_closed, is_non_backtracking, walk_length
from .registry import ExperimentResult, register


@register(
    "fig1",
    "r-forgetfulness across graph families, and Lemma 2.1",
    "Fig. 1, Lemma 2.1",
)
def run_fig1() -> ExperimentResult:
    """Check the r-forgetful property on the paper's example families.

    Two readings are evaluated (see ``repro.graphs.forgetful``): the
    literal 'strict' one — which the experiment shows is unsatisfiable
    for r >= 2 on every catalog graph — and the intent-based 'escape'
    one, under which large cycles satisfy the property while finite
    grids and trees fail exactly at boundaries and leaves.  Lemma 2.1
    (diam >= 2r+1) is machine-checked for every strict-mode success; for
    escape mode the guaranteed bound is diam >= r+1 and C5 shows 2r+1
    can fail, which the rows record.
    """
    catalog = [
        ("C5", cycle_graph(5)),
        ("C6", cycle_graph(6)),
        ("C8", cycle_graph(8)),
        ("C10", cycle_graph(10)),
        ("C12", cycle_graph(12)),
        ("grid4x4", grid_graph(4, 4)),
        ("torus6x6", toroidal_grid_graph(6, 6)),
        ("tree_h3", binary_tree(3)),
        ("path8", path_graph(8)),
        ("theta(4,4,6)", theta_graph(4, 4, 6)),
    ]
    rows = []
    ok = True
    strict_r2_all_fail = True
    for name, graph in catalog:
        diam = diameter(graph)
        for radius in (1, 2):
            for mode in ("strict", "escape"):
                report = forgetful_report(graph, radius, mode=mode)
                if mode == "strict" and radius >= 2 and report.is_forgetful:
                    strict_r2_all_fail = False
                lemma21 = diam >= 2 * radius + 1
                if mode == "strict" and report.is_forgetful and not lemma21:
                    ok = False  # Lemma 2.1 must hold in strict mode
                rows.append(
                    {
                        "graph": name,
                        "r": radius,
                        "mode": mode,
                        "forgetful": report.is_forgetful,
                        "defects": report.defect_count,
                        "diam": diam,
                        "diam>=2r+1": lemma21,
                    }
                )
    notes = [
        "strict mode (paper-literal) unsatisfiable at r=2 on the whole catalog: "
        + str(strict_r2_all_fail),
        "escape-mode C5 at r=1 satisfies the property with diam=2 < 3=2r+1 — "
        "Lemma 2.1 needs the strict reading",
    ]
    ok = ok and strict_r2_all_fail
    # Escape-mode expectations: large cycles pass, finite grids/trees fail.
    expectations = [
        ("C12", 2, True),
        ("C10", 2, True),
        ("C6", 2, False),
        ("grid4x4", 1, False),
        ("tree_h3", 1, False),
        ("theta(4,4,6)", 1, True),
    ]
    by_key = {(r["graph"], r["r"], r["mode"]): r["forgetful"] for r in rows}
    for name, radius, expected in expectations:
        if by_key[(name, radius, "escape")] != expected:
            ok = False
            notes.append(f"unexpected escape-mode verdict for {name} at r={radius}")
    return ExperimentResult(
        exp_id="fig1",
        title="r-forgetfulness across graph families",
        paper_claim="escape paths leave N^r(u) monotonically; diam >= 2r+1 (Lemma 2.1)",
        ok=ok,
        rows=rows,
        notes=notes,
    )


@register(
    "fig2",
    "Radius-2 views and invisible boundary edges",
    "Fig. 2, Section 2.2",
)
def run_fig2() -> ExperimentResult:
    """Reconstruct Fig. 2's phenomenon: an edge between two distance-2
    nodes is invisible in a radius-2 view, and the message-passing
    simulator reproduces exactly the same view."""
    graph = cycle_graph(5)
    instance = Instance.build(graph)
    view = extract_view(instance, 0, 2)
    visible_edges = len(view.edges)
    total_edges = graph.size
    simulated, stats = simulate_views(instance, 2)
    rows = [
        {
            "graph": "C5",
            "center": 0,
            "radius": 2,
            "visible_nodes": view.size,
            "visible_edges": visible_edges,
            "graph_edges": total_edges,
            "invisible_edges": total_edges - visible_edges,
            "simulator_matches": simulated[0] == view,
            "messages": stats.total_messages,
        }
    ]
    # The invisible edge is (2, 3): both endpoints at distance 2 from 0.
    ok = (
        view.size == 5
        and visible_edges == 4
        and simulated[0] == view
        and all(simulated[v] == extract_view(instance, v, 2) for v in graph.nodes)
    )
    return ExperimentResult(
        exp_id="fig2",
        title="Radius-2 views and invisible boundary edges",
        paper_claim="G_v^r omits edges between distance-r nodes; views are "
        "what r flooding rounds reconstruct",
        ok=ok,
        rows=rows,
    )


def degree_one_witness_instances() -> list[Instance]:
    """The Fig. 3 witness family: labeled P4 yes-instances of the
    degree-one LCP, over *all* unanimously accepted labelings (the
    paper's I1/I2 are two members of this family) — enough to close the
    Fig. 4 odd cycle."""
    lcp = DegreeOneLCP()
    return list(
        labeled_yes_instances(
            lcp,
            [path_graph(4)],
            port_limit=8,
            id_bound=4,
            include_all_accepted_labelings=True,
        )
    )


@register(
    "fig3_4",
    "Odd cycle in V(D, 4) for the degree-one LCP",
    "Figs. 3-4, Lemma 4.1",
)
def run_fig3_4() -> ExperimentResult:
    """Rebuild the Figs. 3–4 witness: labeled 4-node instances whose
    accepting views close an odd cycle in ``V(D, 4)`` — the hiding proof
    of Lemma 4.1."""
    lcp = DegreeOneLCP()
    witnesses = degree_one_witness_instances()
    verdict = hiding_verdict_from_instances(lcp, witnesses)
    odd_len = len(verdict.odd_cycle) - 1 if verdict.odd_cycle else None
    rows = [
        {
            "witness_instances": len(witnesses),
            "views": verdict.ngraph.order,
            "compat_edges": verdict.ngraph.size,
            "odd_cycle_len": odd_len,
            "hiding": verdict.hiding,
        }
    ]
    ok = verdict.hiding is True and odd_len is not None and odd_len % 2 == 1
    return ExperimentResult(
        exp_id="fig3_4",
        title="Odd cycle in V(D, 4) for the degree-one LCP",
        paper_claim="V(D, 4) contains an odd cycle built from two labeled "
        "P4 instances (paper exhibits a 5-cycle)",
        ok=ok,
        rows=rows,
    )


def even_cycle_witness_instances() -> list[Instance]:
    """The Fig. 5 instance family: labeled C4 and C6 yes-instances."""
    lcp = EvenCycleLCP()
    return list(
        labeled_yes_instances(
            lcp, [cycle_graph(4), cycle_graph(6)], port_limit=64, id_bound=6
        )
    )


@register(
    "fig5_6",
    "Odd closed walk in V(D, 6) for the even-cycle LCP",
    "Figs. 5-6, Lemma 4.2",
)
def run_fig5_6() -> ExperimentResult:
    """Rebuild the Figs. 5–6 witness from edge-colored C4/C6 instances."""
    lcp = EvenCycleLCP()
    witnesses = even_cycle_witness_instances()
    verdict = hiding_verdict_from_instances(lcp, witnesses)
    odd_len = len(verdict.odd_cycle) - 1 if verdict.odd_cycle else None
    rows = [
        {
            "witness_instances": len(witnesses),
            "views": verdict.ngraph.order,
            "compat_edges": verdict.ngraph.size,
            "odd_cycle_len": odd_len,
            "hiding": verdict.hiding,
        }
    ]
    ok = verdict.hiding is True and odd_len is not None and odd_len % 2 == 1
    return ExperimentResult(
        exp_id="fig5_6",
        title="Odd closed walk in V(D, 6) for the even-cycle LCP",
        paper_claim="V(D, 6) contains an odd cycle from edge-colored even "
        "cycles (paper exhibits a 3-cycle)",
        ok=ok,
        rows=rows,
    )


@register(
    "fig7",
    "View compatibility with respect to a shared-identifier node",
    "Fig. 7, Section 5.1",
)
def run_fig7() -> ExperimentResult:
    """Reconstruct Fig. 7's situation: two radius-2 views from different
    instances that agree on the radius-1 surroundings of their shared
    inner identifiers, hence are compatible — plus a negative case where
    an inner disagreement breaks compatibility.

    Instance A is the path 1-2-3-4-5; instance B is the longer path
    1-2-3-4-5-6-7.  The radius-2 view of A's identifier-3 node and the
    radius-2 view of B's identifier-4 node share the inner identifiers
    {3, 4}; their radius-1 surroundings agree (boundary differences —
    A's identifier-5 node is a leaf, B's is interior — are *allowed*,
    exactly the point of Fig. 7)."""
    from ..local.labeling import Labeling  # noqa: PLC0415

    a = path_graph(5)
    inst_a = Instance.build(a, id_bound=9)
    b = path_graph(7)
    inst_b = Instance.build(b, id_bound=9)

    view_a = extract_view(inst_a, 2, 2)  # center identifier 3, sees 1..5
    view_b = extract_view(inst_b, 3, 2)  # center identifier 4, sees 2..6
    assert view_a.ids is not None
    u_local = view_a.ids.index(4)
    compatible = node_compatible_with(view_a, u_local, view_b)

    # Negative case: change B's labeling at the shared inner node.
    inst_a2 = inst_a.with_labeling(Labeling({v: "x" for v in a.nodes}))
    labels_b = {v: "x" for v in b.nodes}
    labels_b[3] = "y"  # node with identifier 4 — inside both views
    inst_b2 = inst_b.with_labeling(Labeling(labels_b))
    view_a2 = extract_view(inst_a2, 2, 2)
    view_b2 = extract_view(inst_b2, 3, 2)
    u_local2 = view_a2.ids.index(4)
    incompatible = not node_compatible_with(view_a2, u_local2, view_b2)

    rows = [
        {"case": "matching inner radius-1 views", "compatible": compatible},
        {"case": "label mismatch at shared inner node", "compatible": not incompatible},
    ]
    ok = compatible and incompatible
    return ExperimentResult(
        exp_id="fig7",
        title="View compatibility with respect to a shared-identifier node",
        paper_claim="compatibility constrains only inner (distance < r) "
        "shared identifiers, via their radius-1 views",
        ok=ok,
        rows=rows,
    )


@register(
    "fig8",
    "Escape-walk construction W_e and odd-walk composition",
    "Fig. 8, Lemmas 5.4-5.5",
)
def run_fig8() -> ExperimentResult:
    """Build the closed walk ``W_e`` on concrete r-forgetful instances and
    compose an odd view-walk with escape walks (Lemma 5.4)."""
    rows = []
    ok = True
    for name, graph in [("C12", cycle_graph(12)), ("theta(4,4,6)", theta_graph(4, 4, 6))]:
        instance = Instance.build(graph)
        u, v = 0, sorted(graph.neighbors(0), key=repr)[0]
        walk = escape_walk(instance, u, v, 1)
        rows.append(
            {
                "graph": name,
                "edge": (u, v),
                "walk_len": walk_length(walk),
                "closed": is_closed(walk),
                "even": walk_length(walk) % 2 == 0,
                "non_backtracking": is_non_backtracking(walk),
            }
        )
        ok = ok and is_closed(walk) and walk_length(walk) % 2 == 0 and is_non_backtracking(walk)

    # Lemma 5.4 composition: an anonymous trivial LCP on a bipartite theta
    # graph has view collisions (odd closed walk in V); insert L_e.
    trivial = EnumerativeLCP(
        ConstantDecoder(True, anonymous=True),
        alphabet=["c"],
        promise_fn=is_bipartite,
        name="AcceptAll",
    )
    theta = theta_graph(4, 4, 6)
    labeled = list(labeled_yes_instances(trivial, [theta], port_limit=1, id_bound=theta.order))
    from ..neighborhood.ngraph import build_neighborhood_graph  # noqa: PLC0415

    ngraph = build_neighborhood_graph(trivial, labeled)
    odd = ngraph.find_odd_cycle()
    composed = None
    if odd is not None:
        composed = compose_with_escape_walks(trivial, ngraph, odd)
    rows.append(
        {
            "graph": "theta(4,4,6) + AcceptAll",
            "odd_cycle_len": (len(odd) - 1) if odd else None,
            "composed_len": composed.length() if composed else None,
            "composed_odd": (composed.length() % 2 == 1) if composed else None,
            "composed_closed": composed.is_closed() if composed else None,
            "segments_non_backtracking": composed.node_walks_non_backtracking()
            if composed
            else None,
        }
    )
    ok = (
        ok
        and composed is not None
        and composed.length() % 2 == 1
        and composed.is_closed()
        and composed.node_walks_non_backtracking()
    )
    return ExperimentResult(
        exp_id="fig8",
        title="Escape-walk construction W_e and odd-walk composition",
        paper_claim="W_e is an even non-backtracking closed walk; inserting "
        "L_e before each edge keeps the composed walk odd and closed",
        ok=ok,
        rows=rows,
    )
